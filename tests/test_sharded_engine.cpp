// Sharded kernel tests: the determinism contract of sim/sharded_engine.hpp.
// The three rules under test: (1) events execute in (time, lane, lane_seq)
// order; (2) same-lane schedules are immediate and cancellable while
// cross-lane posts merge at the barrier in (at, src_lane, src_emit_seq)
// order; (3) conservative windows clamp intra-window cross-lane posts —
// identically at every shard count. The headline property: a synthetic
// workload's full per-lane execution log is bit-identical across shard
// counts {1, 2, 4, 8} and worker counts {0, 2, 3}.

#include "sim/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

namespace ncast {
namespace {

using sim::LaneId;
using sim::ShardedEngine;
using sim::TimerHandle;

TEST(ShardedEngine, ValidatesConstruction) {
  EXPECT_THROW(ShardedEngine(0), std::invalid_argument);
  EXPECT_THROW(ShardedEngine(1, 0, 0.0), std::invalid_argument);
  ShardedEngine e(4, 0, 0.5);
  EXPECT_EQ(e.shards(), 4u);
  EXPECT_EQ(e.workers(), 0u);
  EXPECT_EQ(e.shard_of(5), 1u);
}

TEST(ShardedEngine, RunsInTimeLaneSeqOrder) {
  ShardedEngine e(1, 0, 1.0);
  std::vector<int> order;
  // Distinct times run in time order regardless of scheduling order.
  e.schedule_on(0, 3.0, [&] { order.push_back(3); });
  e.schedule_on(0, 1.0, [&] { order.push_back(1); });
  e.schedule_on(0, 2.0, [&] { order.push_back(2); });
  // Equal times: lane breaks the tie, then per-lane scheduling order.
  e.schedule_on(2, 5.0, [&] { order.push_back(52); });
  e.schedule_on(1, 5.0, [&] { order.push_back(51); });
  e.schedule_on(1, 5.0, [&] { order.push_back(510); });
  EXPECT_EQ(e.run_until(10.0), 6u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 51, 510, 52}));
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(ShardedEngine, HorizonIsInclusiveAndLaterEventsStayPending) {
  ShardedEngine e(2, 0, 0.5);
  int fired = 0;
  e.schedule_on(0, 1.0, [&] { ++fired; });
  e.schedule_on(1, 2.0, [&] { ++fired; });  // exactly at the horizon: fires
  e.schedule_on(0, 5.0, [&] { ++fired; });
  EXPECT_EQ(e.run_until(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_EQ(e.run_until(10.0), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(ShardedEngine, SchedulingInThePastThrows) {
  ShardedEngine e(1, 0, 0.5);
  e.schedule_on(0, 1.0, [] {});
  e.run_until(4.0);
  EXPECT_THROW(e.schedule_on(0, 3.0, [] {}), std::invalid_argument);
  try {
    e.schedule_on(0, 1.0, [] {});
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& ex) {
    EXPECT_STREQ(ex.what(), "ShardedEngine: scheduling in the past");
  }
}

TEST(ShardedEngine, SameLaneSchedulingIsImmediateAndCancellable) {
  ShardedEngine e(2, 0, 0.5);
  std::vector<int> order;
  TimerHandle victim;
  e.schedule_on(3, 1.0, [&] {
    // Same-lane schedules land immediately with consecutive lane_seqs...
    e.schedule_on(3, 2.0, [&] { order.push_back(1); });
    victim = e.schedule_on(3, 2.0, [&] { order.push_back(99); });
    e.schedule_on(3, 2.0, [&] { order.push_back(2); });
    EXPECT_TRUE(victim.valid());  // ...and are cancellable (lane-local).
  });
  e.schedule_on(3, 1.5, [&] { EXPECT_TRUE(e.cancel(victim)); });
  e.run_until(5.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_FALSE(e.cancel(victim));  // second cancel is a no-op
}

TEST(ShardedEngine, CrossLanePostsAreNotCancellable) {
  ShardedEngine e(2, 0, 0.5);
  int fired = 0;
  TimerHandle h;
  e.schedule_on(0, 1.0, [&] {
    h = e.schedule_on(1, 3.0, [&] { ++fired; });  // lane 0 -> lane 1
    EXPECT_FALSE(h.valid());
  });
  e.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(ShardedEngine, LaneSchedulerAdaptsTheSchedulerInterface) {
  ShardedEngine e(4, 0, 0.5);
  sim::Scheduler& lane = e.lane(7);
  std::vector<double> at;
  lane.schedule_at(1.0, [&] {
    at.push_back(lane.now());
    lane.schedule_in(0.5, [&] { at.push_back(lane.now()); });
  });
  TimerHandle h = lane.schedule_at(2.0, [&] { at.push_back(-1.0); });
  EXPECT_TRUE(lane.cancel(h));
  e.run_until(10.0);
  EXPECT_EQ(at, (std::vector<double>{1.0, 1.5}));
}

// Rule 3: a cross-lane post whose arrival falls inside the emitting window
// is clamped to the window end — at EVERY shard count, so S=1 cannot
// deliver earlier than S=8 would.
TEST(ShardedEngine, IntraWindowCrossLanePostsClampIdenticallyAtAnyShardCount) {
  std::vector<double> arrivals;
  std::uint64_t clamped = 0;
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    ShardedEngine e(shards, 0, 1.0);
    std::vector<double> got;
    e.schedule_on(0, 0.25, [&] {
      // Arrival 0.35 is inside the emitting window [0, 1): clamp to 1.0.
      e.schedule_on(1, 0.35, [&] { got.push_back(e.now()); });
      // Arrival 1.75 is past the window end: delivered on time.
      e.schedule_on(1, 1.75, [&] { got.push_back(e.now()); });
    });
    e.run_until(5.0);
    EXPECT_EQ(e.clamped_posts(), 1u) << "shards=" << shards;
    if (arrivals.empty()) {
      arrivals = got;
      clamped = e.clamped_posts();
      EXPECT_EQ(arrivals, (std::vector<double>{1.0, 1.75}));
    } else {
      EXPECT_EQ(got, arrivals) << "shards=" << shards;
      EXPECT_EQ(e.clamped_posts(), clamped) << "shards=" << shards;
    }
  }
}

TEST(ShardedEngine, CountsCrossShardHandoffsAndEpochs) {
  ShardedEngine e(2, 0, 0.5);
  int fired = 0;
  e.schedule_on(0, 0.1, [&] {
    e.schedule_on(1, 2.0, [&] { ++fired; });  // shard 0 -> shard 1
  });
  e.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.cross_shard_handoffs(), 1u);
  EXPECT_GE(e.epochs_run(), 2u);
  EXPECT_EQ(e.lifetime_executed(), 2u);
}

// The synthetic determinism workload. Every lane runs a chain of
// self-rescheduled steps with lane-dependent (but deterministic) delays;
// every third step posts a tagged message to another lane. Each lane logs
// (time, src_lane, value) for everything it executes — per-lane vectors,
// owner-lane writes only. The concatenated per-lane logs are the digest.
struct Workload {
  explicit Workload(ShardedEngine& engine, int lanes, int steps)
      : e(engine), lanes_n(lanes), steps_n(steps), logs(lanes) {}

  void start() {
    for (int l = 0; l < lanes_n; ++l) {
      const int lane = l;
      e.schedule_on(static_cast<LaneId>(lane), 0.1 * (lane + 1),
                    [this, lane] { fire(lane, 0); });
    }
  }

  void fire(int lane, int step) {
    logs[lane].emplace_back(e.now(), lane, step);
    if (step % 3 == 0) {
      const int dest = (lane + 3) % lanes_n;
      const int tag = lane * 1000 + step;
      // Delay >= 1.0 > epoch: never clamped, always a barrier merge.
      e.schedule_on(static_cast<LaneId>(dest), e.now() + 1.0 + 0.05 * lane,
                    [this, dest, tag] {
                      logs[dest].emplace_back(e.now(), -1, tag);
                    });
    }
    if (step + 1 < steps_n) {
      const double delta = 0.3 + 0.1 * ((lane * 7 + step * 13) % 5);
      e.schedule_on(static_cast<LaneId>(lane), e.now() + delta,
                    [this, lane, step] { fire(lane, step + 1); });
    }
  }

  ShardedEngine& e;
  int lanes_n;
  int steps_n;
  std::vector<std::vector<std::tuple<double, int, int>>> logs;
};

// The headline contract: the complete execution history is a pure function
// of the workload — independent of shard count and worker-thread count.
TEST(ShardedEngine, WorkloadIsInvariantAcrossShardAndWorkerCounts) {
  constexpr int kLanes = 10;
  constexpr int kSteps = 25;

  std::vector<std::vector<std::tuple<double, int, int>>> baseline;
  std::size_t baseline_events = 0;
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    for (std::uint32_t workers : {0u, 2u, 3u}) {
      ShardedEngine e(shards, workers, 0.25);
      e.reserve_lanes(kLanes);
      Workload w(e, kLanes, kSteps);
      w.start();
      const std::size_t events = e.run_until(100.0);
      if (baseline.empty()) {
        baseline = w.logs;
        baseline_events = events;
        // Sanity: every lane ran its full chain plus received posts.
        for (const auto& log : w.logs) EXPECT_GE(log.size(), 25u);
      } else {
        EXPECT_EQ(w.logs, baseline)
            << "shards=" << shards << " workers=" << workers;
        EXPECT_EQ(events, baseline_events)
            << "shards=" << shards << " workers=" << workers;
      }
    }
  }
}

// Cross-lane ties: posts from different source lanes landing on one
// destination at the same clamped time must interleave by (src_lane,
// emit_seq) — not by shard execution order.
TEST(ShardedEngine, BarrierMergeOrdersBySourceLaneThenEmitSeq) {
  std::vector<int> baseline;
  for (std::uint32_t shards : {1u, 4u}) {
    ShardedEngine e(shards, 0, 1.0);
    std::vector<int> order;
    // Schedule emitters in descending lane order; all post to lane 0 with
    // the same in-window arrival, so all clamp to t = 1.0.
    for (int src = 3; src >= 1; --src) {
      e.schedule_on(static_cast<LaneId>(src), 0.5, [&e, &order, src] {
        e.schedule_on(0, 0.6, [&order, src] { order.push_back(src * 10); });
        e.schedule_on(0, 0.6, [&order, src] { order.push_back(src * 10 + 1); });
      });
    }
    e.run_until(3.0);
    if (baseline.empty()) {
      baseline = order;
      EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 30, 31}));
    } else {
      EXPECT_EQ(order, baseline) << "shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace ncast
