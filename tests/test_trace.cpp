// Structured-trace tests: ring wraparound, time stamping, and JSONL export.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ncast::obs {
namespace {

TEST(TraceBuffer, ZeroCapacityThrows) {
  EXPECT_THROW(TraceBuffer(0), std::invalid_argument);
}

// emit() is a deliberate no-op with NCAST_OBS=OFF; the behavior-dependent
// tests below are compiled out there and the no-op contract is checked at
// the bottom of the file.
#if NCAST_OBS_ENABLED

TEST(TraceBuffer, StampsEventsWithTheCurrentClock) {
  TraceBuffer tb(8);
  tb.set_now(1.5);
  tb.emit(TraceKind::kJoin, 7, 3);
  tb.set_now(2.5);
  tb.emit(TraceKind::kCrash, 7);
  const auto events = tb.events_in_order();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].t, 1.5);
  EXPECT_EQ(events[0].kind, TraceKind::kJoin);
  EXPECT_EQ(events[0].node, 7u);
  EXPECT_EQ(events[0].a, 3u);
  EXPECT_DOUBLE_EQ(events[1].t, 2.5);
  EXPECT_EQ(events[1].kind, TraceKind::kCrash);
}

TEST(TraceBuffer, RingKeepsTheNewestEvents) {
  TraceBuffer tb(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    tb.set_now(static_cast<double>(i));
    tb.emit(TraceKind::kPacketSend, i, i + 100);
  }
  EXPECT_EQ(tb.capacity(), 4u);
  EXPECT_EQ(tb.size(), 4u);
  EXPECT_EQ(tb.total_emitted(), 6u);
  EXPECT_EQ(tb.dropped_events(), 2u);
  const auto events = tb.events_in_order();
  ASSERT_EQ(events.size(), 4u);
  // Oldest two (0, 1) were overwritten; 2..5 remain, oldest first.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].node, i + 2);
    EXPECT_EQ(events[i].a, i + 102);
    EXPECT_DOUBLE_EQ(events[i].t, static_cast<double>(i + 2));
  }
}

TEST(TraceBuffer, DroppedEventsCountsOverwritesOnly) {
  TraceBuffer tb(2);
  tb.emit(TraceKind::kJoin, 1);
  tb.emit(TraceKind::kJoin, 2);
  EXPECT_EQ(tb.dropped_events(), 0u);
  tb.emit(TraceKind::kJoin, 3);
  EXPECT_EQ(tb.dropped_events(), 1u);
  tb.clear();
  EXPECT_EQ(tb.dropped_events(), 0u);
}

TEST(TraceBuffer, SpanIdsAreSequentialAndNeverZero) {
  TraceBuffer tb(4);
  const SpanId s1 = tb.new_span();
  const SpanId s2 = tb.new_span();
  EXPECT_NE(s1, kNoSpan);
  EXPECT_NE(s2, kNoSpan);
  EXPECT_NE(s1, s2);
}

TEST(TraceBuffer, ExactlyFullDoesNotWrap) {
  TraceBuffer tb(3);
  for (std::uint64_t i = 0; i < 3; ++i) tb.emit(TraceKind::kJoin, i);
  EXPECT_EQ(tb.size(), 3u);
  const auto events = tb.events_in_order();
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(events[i].node, i);
}

TEST(TraceBuffer, ClearEmptiesButKeepsCapacity) {
  TraceBuffer tb(4);
  tb.emit(TraceKind::kJoin, 1);
  tb.clear();
  EXPECT_EQ(tb.size(), 0u);
  EXPECT_EQ(tb.capacity(), 4u);
  tb.emit(TraceKind::kLeave, 2);
  ASSERT_EQ(tb.events_in_order().size(), 1u);
  EXPECT_EQ(tb.events_in_order()[0].kind, TraceKind::kLeave);
}

TEST(TraceBuffer, JsonlHeaderThenOneObjectPerLine) {
  TraceBuffer tb(8);
  tb.set_now(0.25);
  tb.emit(TraceKind::kJoin, 1, 2, 3);
  tb.emit(TraceKind::kRankAdvance, 4, 5);
  const std::string out = tb.to_jsonl();
  std::istringstream lines(out);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line,
            R"({"schema":"ncast.trace.v1","capacity":8,"total_emitted":2,)"
            R"("dropped_events":0})");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, R"({"t":0.25,"kind":"join","node":1,"a":2,"b":3})");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, R"({"t":0.25,"kind":"rank_advance","node":4,"a":5,"b":0})");
  EXPECT_FALSE(std::getline(lines, line));
}

TEST(TraceBuffer, JsonlCarriesSpanAndParentWhenSet) {
  TraceBuffer tb(8);
  const SpanId parent = tb.new_span();
  const SpanId child = tb.new_span();
  tb.emit(TraceKind::kSpanBegin, 3, 0, 0, "repair", child, parent);
  const std::string out = tb.to_jsonl();
  EXPECT_NE(out.find("\"span\":" + std::to_string(child)), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"parent\":" + std::to_string(parent)), std::string::npos)
      << out;
  // kNoSpan is spelled by omission, not as 0.
  tb.clear();
  tb.emit(TraceKind::kJoin, 1);
  EXPECT_EQ(tb.to_jsonl().find("\"span\""), std::string::npos);
  EXPECT_EQ(tb.to_jsonl().find("\"parent\""), std::string::npos);
}

TEST(TraceBuffer, JsonlEscapesDetailText) {
  TraceBuffer tb(2);
  tb.emit(TraceKind::kDefect, 0, 0, 0, "say \"hi\"\nback\x01slash\\");
  const std::string out = tb.to_jsonl();
  EXPECT_NE(out.find("\"detail\":\"say \\\"hi\\\"\\nback\\u0001slash\\\\\""),
            std::string::npos)
      << out;
}

TEST(TraceBuffer, JsonlOmitsEmptyDetail) {
  TraceBuffer tb(2);
  tb.emit(TraceKind::kRepair, 9);
  EXPECT_EQ(tb.to_jsonl().find("detail"), std::string::npos);
}

TEST(TraceBuffer, WriteJsonlRoundTrips) {
  TraceBuffer tb(4);
  tb.emit(TraceKind::kCrash, 11);
  const std::string path = ::testing::TempDir() + "trace_test.jsonl";
  ASSERT_TRUE(tb.write_jsonl(path));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), tb.to_jsonl());
  std::remove(path.c_str());
}

#else  // !NCAST_OBS_ENABLED

TEST(TraceBuffer, EmitIsANoOpWhenDisabled) {
  TraceBuffer tb(4);
  tb.emit(TraceKind::kJoin, 1);
  EXPECT_EQ(tb.size(), 0u);
  EXPECT_EQ(tb.total_emitted(), 0u);
  EXPECT_EQ(tb.dropped_events(), 0u);
  EXPECT_TRUE(tb.events_in_order().empty());
  // The export still carries the schema header (a valid, empty trace file),
  // just no event lines.
  const std::string out = tb.to_jsonl();
  EXPECT_NE(out.find("\"ncast.trace.v1\""), std::string::npos);
  EXPECT_EQ(out.find("\"kind\""), std::string::npos);
}

TEST(TraceBuffer, SpanAllocationSurvivesTheKillSwitch) {
  // Span ids ride protocol messages, so new_span() must keep allocating
  // even when event emission is compiled out.
  TraceBuffer tb(4);
  EXPECT_NE(tb.new_span(), kNoSpan);
  EXPECT_NE(tb.new_span(), tb.new_span());
}

#endif  // NCAST_OBS_ENABLED

TEST(TraceKindNames, AllDistinctAndStable) {
  EXPECT_STREQ(to_string(TraceKind::kJoin), "join");
  EXPECT_STREQ(to_string(TraceKind::kLeave), "leave");
  EXPECT_STREQ(to_string(TraceKind::kCrash), "crash");
  EXPECT_STREQ(to_string(TraceKind::kRepair), "repair");
  EXPECT_STREQ(to_string(TraceKind::kDefect), "defect");
  EXPECT_STREQ(to_string(TraceKind::kPacketSend), "packet_send");
  EXPECT_STREQ(to_string(TraceKind::kRankAdvance), "rank_advance");
  EXPECT_STREQ(to_string(TraceKind::kCongestionOffload), "congestion_offload");
  EXPECT_STREQ(to_string(TraceKind::kCongestionRestore), "congestion_restore");
  EXPECT_STREQ(to_string(TraceKind::kMsgSend), "msg_send");
  EXPECT_STREQ(to_string(TraceKind::kMsgDeliver), "msg_deliver");
  EXPECT_STREQ(to_string(TraceKind::kMsgDrop), "msg_drop");
  EXPECT_STREQ(to_string(TraceKind::kMsgRetry), "msg_retry");
  EXPECT_STREQ(to_string(TraceKind::kSpanBegin), "span_begin");
  EXPECT_STREQ(to_string(TraceKind::kSpanEnd), "span_end");
}

TEST(GlobalTrace, IsASingleton) {
  TraceBuffer& a = trace();
  TraceBuffer& b = trace();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace ncast::obs
