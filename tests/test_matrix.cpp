// Dense finite-field matrix tests.

#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "gf/gf256.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using Gf = gf::Gf256;
using Mat = linalg::Matrix<Gf>;

TEST(Matrix, ConstructionZeroInitialized) {
  Mat m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0);
  }
}

TEST(Matrix, Identity) {
  const Mat id = Mat::identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(id(r, c), r == c ? 1 : 0);
  }
}

TEST(Matrix, AtBoundsChecked) {
  Mat m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  m.at(1, 1) = 5;
  EXPECT_EQ(m.at(1, 1), 5);
}

TEST(Matrix, SwapRows) {
  Mat m(2, 3);
  m(0, 0) = 1;
  m(1, 2) = 7;
  m.swap_rows(0, 1);
  EXPECT_EQ(m(1, 0), 1);
  EXPECT_EQ(m(0, 2), 7);
  m.swap_rows(0, 0);  // no-op
  EXPECT_EQ(m(0, 2), 7);
}

TEST(Matrix, AppendRow) {
  Mat m(1, 3);
  m.append_row({1, 2, 3});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m(1, 1), 2);
  EXPECT_THROW(m.append_row({1}), std::invalid_argument);
}

TEST(Matrix, MultiplyByIdentity) {
  Rng rng(1);
  Mat m(3, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = static_cast<std::uint8_t>(rng.below(256));
  }
  EXPECT_EQ(m.multiply(Mat::identity(3)), m);
  EXPECT_EQ(Mat::identity(3).multiply(m), m);
}

TEST(Matrix, MultiplyKnown) {
  // Over GF(2^8): [[1,1],[0,2]] * [[3],[4]] = [[3+4],[2*4]] = [[7],[8]]
  Mat a(2, 2), b(2, 1);
  a(0, 0) = 1; a(0, 1) = 1; a(1, 1) = 2;
  b(0, 0) = 3; b(1, 0) = 4;
  const Mat c = a.multiply(b);
  EXPECT_EQ(c(0, 0), 7);
  EXPECT_EQ(c(1, 0), 8);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Mat a(2, 3), b(2, 2);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(Matrix, MultiplyAssociative) {
  Rng rng(2);
  auto random_matrix = [&](std::size_t r, std::size_t c) {
    Mat m(r, c);
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < c; ++j) m(i, j) = static_cast<std::uint8_t>(rng.below(256));
    }
    return m;
  };
  const Mat a = random_matrix(3, 4), b = random_matrix(4, 2), c = random_matrix(2, 5);
  EXPECT_EQ(a.multiply(b).multiply(c), a.multiply(b.multiply(c)));
}

}  // namespace
}  // namespace ncast
