// Protocol-level churn stress: hundreds of ticks of interleaved joins,
// graceful leaves, silent crashes, and congestion adjustments against live
// ServerNode/ClientNode endpoints, with consistency checked throughout and
// end-to-end payload integrity at the end. This is the closest thing in the
// suite to "running the deployment".

#include <gtest/gtest.h>

#include <memory>

#include "node/driver.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using namespace node;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  return bytes;
}

class ProtocolChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolChurn, SustainedMixedWorkload) {
  const std::uint64_t seed = GetParam();
  ServerConfig scfg;
  scfg.k = 12;
  scfg.default_degree = 3;
  scfg.repair_delay = 2;
  scfg.generation_size = 8;
  scfg.symbols = 8;
  scfg.seed = seed;
  ServerNode server(scfg, random_bytes(8 * 8 * 2, seed ^ 0x1234));

  ClientConfig ccfg;
  ccfg.silence_timeout = 6;
  ccfg.seed = seed;

  std::vector<std::unique_ptr<ClientNode>> clients;
  TickDriver driver(server, {});
  Rng rng(seed * 31 + 7);
  Address next_address = 1;

  auto spawn = [&] {
    clients.push_back(std::make_unique<ClientNode>(next_address++, ccfg));
    driver.add_client(clients.back().get());
    clients.back()->join(driver.network());
  };
  for (int i = 0; i < 10; ++i) spawn();

  std::size_t leaves = 0, crashes = 0;
  for (int step = 0; step < 120; ++step) {
    driver.run(3);

    // Pick a random live, joined client for an action.
    std::vector<ClientNode*> live;
    for (auto& c : clients) {
      if (!c->crashed() && c->joined() &&
          server.matrix().contains(c->address())) {
        live.push_back(c.get());
      }
    }
    const auto roll = rng.below(100);
    if (roll < 40 || live.size() < 6) {
      spawn();
    } else if (roll < 55) {
      live[rng.below(live.size())]->leave(driver.network());
      ++leaves;
    } else if (roll < 70) {
      driver.crash(*live[rng.below(live.size())]);
      ++crashes;
    } else if (roll < 85) {
      live[rng.below(live.size())]->request_offload(driver.network());
    } else {
      live[rng.below(live.size())]->request_restore(driver.network());
    }
    ASSERT_TRUE(server.matrix().check_invariants()) << "step " << step;
  }

  EXPECT_GT(leaves, 0u);
  EXPECT_GT(crashes, 0u);

  // Quiesce: let all complaints resolve, then stream to completion.
  driver.run(60);
  EXPECT_EQ(server.matrix().failed_count(), 0u);

  std::size_t live_joined = 0, decoded = 0, verified = 0;
  driver.run(800);
  for (auto& c : clients) {
    if (c->crashed() || !c->joined()) continue;
    if (!server.matrix().contains(c->address())) continue;  // left gracefully
    ++live_joined;
    if (c->decoded()) {
      ++decoded;
      if (c->data() == server.data()) ++verified;
    }
  }
  ASSERT_GT(live_joined, 0u);
  EXPECT_EQ(decoded, live_joined);
  EXPECT_EQ(verified, decoded);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolChurn,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ncast
