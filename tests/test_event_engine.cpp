// Discrete-event engine tests: ordering, ties, horizons, re-entrant
// scheduling.

#include "sim/event_engine.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace ncast {
namespace {

using sim::EventEngine;

TEST(EventEngine, RunsInTimeOrder) {
  EventEngine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(EventEngine, TiesFireInSchedulingOrder) {
  EventEngine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventEngine, HorizonExcludesLaterEvents) {
  EventEngine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(e.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_EQ(e.run_until(10.0), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(EventEngine, EventsCanScheduleEvents) {
  EventEngine e;
  int chain = 0;
  std::function<void()> tick = [&] {
    ++chain;
    if (chain < 5) e.schedule_in(1.0, tick);
  };
  e.schedule_at(0.0, tick);
  e.run_until(100.0);
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(e.now(), 100.0);
}

TEST(EventEngine, NowAdvancesToEventTime) {
  EventEngine e;
  double seen = -1.0;
  e.schedule_at(4.5, [&] { seen = e.now(); });
  e.run_until(9.0);
  EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(EventEngine, SchedulingInPastThrows) {
  EventEngine e;
  e.schedule_at(5.0, [] {});
  e.run_until(5.0);
  EXPECT_THROW(e.schedule_at(4.0, [] {}), std::invalid_argument);
}

TEST(EventEngine, StepRunsOneEvent) {
  EventEngine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.step());
}

// Regression for the hot-loop move-out: the running callback's Item has been
// moved off the heap before invocation, so a callback that schedules many new
// events (forcing heap reallocation and reordering) must not corrupt itself
// or the queue.
TEST(EventEngine, CallbackSchedulingManyEventsSurvivesMoveOut) {
  EventEngine e;
  std::vector<double> fired;
  e.schedule_at(1.0, [&] {
    fired.push_back(e.now());
    for (int i = 0; i < 100; ++i) {
      const double at = 2.0 + static_cast<double>(i % 7) + i * 1e-3;
      e.schedule_at(at, [&] { fired.push_back(e.now()); });
    }
  });
  e.run_until(20.0);
  ASSERT_EQ(fired.size(), 101u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

TEST(EventEngine, CountsExecutedEventsInRegistry) {
  auto& ctr = obs::metrics().counter("engine.events_executed");
  const auto before = ctr.value();
  EventEngine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(1.0 + i, [] {});
  e.run_until(10.0);
#if NCAST_OBS_ENABLED
  EXPECT_EQ(ctr.value(), before + 5);
#else
  EXPECT_EQ(ctr.value(), before);
#endif
}

TEST(EventEngine, ScheduleInUsesCurrentTime) {
  EventEngine e;
  double fired_at = -1.0;
  e.schedule_at(3.0, [&] {
    e.schedule_in(2.0, [&] { fired_at = e.now(); });
  });
  e.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventEngine, CancelledEventNeverFires) {
  EventEngine e;
  int fired = 0;
  const auto h = e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });
  EXPECT_EQ(e.pending(), 2u);
  EXPECT_TRUE(e.cancel(h));
  EXPECT_EQ(e.pending(), 1u);
  // Cancelled events are not counted as executed.
  EXPECT_EQ(e.run_until(10.0), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(EventEngine, CancelAfterFiringReturnsFalse) {
  EventEngine e;
  const auto h = e.schedule_at(1.0, [] {});
  e.run_until(2.0);
  EXPECT_FALSE(e.cancel(h));
}

TEST(EventEngine, DoubleCancelReturnsFalse) {
  EventEngine e;
  const auto h = e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.cancel(h));
  EXPECT_FALSE(e.cancel(h));
  EXPECT_FALSE(e.cancel(sim::TimerHandle{}));  // invalid handle
  e.run_until(2.0);
}

TEST(EventEngine, CancelFromEarlierEventAtSameTime) {
  // An event may revoke another event scheduled for the very same instant,
  // as long as it was scheduled later in FIFO order (e.g. a crash at time t
  // revoking a send at time t).
  EventEngine e;
  int fired = 0;
  sim::TimerHandle victim;
  e.schedule_at(1.0, [&] { EXPECT_TRUE(e.cancel(victim)); });
  victim = e.schedule_at(1.0, [&] { ++fired; });
  EXPECT_EQ(e.run_until(5.0), 1u);
  EXPECT_EQ(fired, 0);
}

TEST(EventEngine, StepSkipsCancelledEvents) {
  EventEngine e;
  int fired = 0;
  const auto h = e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });
  e.cancel(h);
  EXPECT_TRUE(e.step());  // skips the cancelled item, runs the live one
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  EXPECT_FALSE(e.step());
}

TEST(EventEngine, CallbackCanScheduleAtNow) {
  // Re-entrancy: a callback scheduling at the current instant (zero delay)
  // runs within the same run_until, after all earlier same-time events.
  EventEngine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] {
    order.push_back(0);
    e.schedule_in(0.0, [&] { order.push_back(2); });
  });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  EXPECT_EQ(e.run_until(1.0), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
}

TEST(RngStreams, SameSeedSameTagReproduces) {
  sim::RngStreams a(42), b(42);
  Rng ra = a.stream("loss");
  Rng rb = b.stream("loss");
  for (int i = 0; i < 16; ++i) EXPECT_EQ(ra(), rb());
}

TEST(RngStreams, DistinctTagsDecorrelate) {
  sim::RngStreams s(42);
  Rng a = s.stream(std::uint64_t{0});
  Rng b = s.stream(std::uint64_t{1});
  Rng c = s.stream("churn");
  bool all_equal_ab = true, all_equal_ac = true;
  for (int i = 0; i < 16; ++i) {
    const auto va = a(), vb = b(), vc = c();
    all_equal_ab = all_equal_ab && va == vb;
    all_equal_ac = all_equal_ac && va == vc;
  }
  EXPECT_FALSE(all_equal_ab);
  EXPECT_FALSE(all_equal_ac);
}

TEST(RngStreams, DistinctSeedsDiverge) {
  Rng a = sim::RngStreams(1).stream("x");
  Rng b = sim::RngStreams(2).stream("x");
  bool all_equal = true;
  for (int i = 0; i < 16; ++i) all_equal = all_equal && a() == b();
  EXPECT_FALSE(all_equal);
}

}  // namespace
}  // namespace ncast
