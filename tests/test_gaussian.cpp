// Gaussian elimination tests: rank, RREF, inversion, solving, and the
// incremental rank tracker — cross-checked against batch elimination on
// random matrices over all three fields (parameterized property sweep).

#include "linalg/gaussian.hpp"

#include <gtest/gtest.h>

#include "gf/gf2.hpp"
#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using Gf = gf::Gf256;
using Mat = linalg::Matrix<Gf>;

TEST(Gaussian, RankOfIdentity) {
  EXPECT_EQ(linalg::rank(Mat::identity(5)), 5u);
}

TEST(Gaussian, RankOfZero) {
  EXPECT_EQ(linalg::rank(Mat(4, 4)), 0u);
}

TEST(Gaussian, RankOfDuplicatedRows) {
  Mat m(3, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  for (int c = 0; c < 3; ++c) m(1, c) = m(0, c);
  m(2, 2) = 1;
  EXPECT_EQ(linalg::rank(m), 2u);
}

TEST(Gaussian, RankOfScaledRow) {
  Mat m(2, 3);
  m(0, 0) = 3; m(0, 1) = 5; m(0, 2) = 7;
  for (int c = 0; c < 3; ++c) m(1, c) = Gf::mul(9, m(0, c));
  EXPECT_EQ(linalg::rank(m), 1u);
}

TEST(Gaussian, RrefProducesPivotStructure) {
  Rng rng(1);
  Mat m(4, 6);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 6; ++c) m(r, c) = static_cast<std::uint8_t>(rng.below(256));
  }
  const auto pivots = linalg::rref_in_place(m);
  for (std::size_t i = 0; i < pivots.size(); ++i) {
    EXPECT_EQ(m(i, pivots[i]), 1);  // pivot normalized
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (r != i) {
        EXPECT_EQ(m(r, pivots[i]), 0);  // column eliminated
      }
    }
    if (i > 0) {
      EXPECT_GT(pivots[i], pivots[i - 1]);  // strictly increasing
    }
  }
}

TEST(Gaussian, InvertRoundTrip) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    Mat m(5, 5);
    for (std::size_t r = 0; r < 5; ++r) {
      for (std::size_t c = 0; c < 5; ++c) m(r, c) = static_cast<std::uint8_t>(rng.below(256));
    }
    const auto inv = linalg::invert(m);
    if (!inv) continue;  // singular draw: skip
    EXPECT_EQ(m.multiply(*inv), Mat::identity(5));
    EXPECT_EQ(inv->multiply(m), Mat::identity(5));
  }
}

TEST(Gaussian, InvertSingularReturnsNullopt) {
  Mat m(3, 3);
  m(0, 0) = 1; m(1, 0) = 1;  // two proportional rows, third zero
  EXPECT_FALSE(linalg::invert(m).has_value());
}

TEST(Gaussian, InvertNonSquareReturnsNullopt) {
  EXPECT_FALSE(linalg::invert(Mat(2, 3)).has_value());
}

TEST(Gaussian, SolveKnownSystem) {
  // x0 + x1 = 6, x1 = 4  ->  x0 = 2 (GF(2^8) addition is XOR)
  Mat m(2, 2);
  m(0, 0) = 1; m(0, 1) = 1; m(1, 1) = 1;
  const auto x = linalg::solve(m, {6, 4});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], 2);
  EXPECT_EQ((*x)[1], 4);
}

TEST(Gaussian, SolveRandomConsistency) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Mat m(6, 6);
    for (std::size_t r = 0; r < 6; ++r) {
      for (std::size_t c = 0; c < 6; ++c) m(r, c) = static_cast<std::uint8_t>(rng.below(256));
    }
    std::vector<std::uint8_t> x_true(6);
    for (auto& v : x_true) v = static_cast<std::uint8_t>(rng.below(256));
    // b = m * x_true
    std::vector<std::uint8_t> b(6, 0);
    for (std::size_t r = 0; r < 6; ++r) {
      for (std::size_t c = 0; c < 6; ++c) {
        b[r] = Gf::add(b[r], Gf::mul(m(r, c), x_true[c]));
      }
    }
    const auto x = linalg::solve(m, b);
    if (!x) continue;  // singular draw
    EXPECT_EQ(*x, x_true);
  }
}

TEST(Gaussian, SolveSingularReturnsNullopt) {
  Mat m(2, 2);  // zero matrix
  EXPECT_FALSE(linalg::solve(m, {1, 2}).has_value());
}

// ---- Incremental rank: property sweep over fields and shapes ----

template <typename Field>
void incremental_matches_batch(std::uint64_t seed, std::size_t rows,
                               std::size_t dim) {
  Rng rng(seed);
  linalg::Matrix<Field> m(0, dim);
  linalg::IncrementalRank<Field> inc(dim);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<typename Field::value_type> row(dim);
    for (auto& v : row) {
      v = static_cast<typename Field::value_type>(rng.below(Field::order));
    }
    m.append_row(row);
    const std::size_t before = inc.rank();
    const bool innovative = inc.absorb(row);
    EXPECT_EQ(inc.rank(), before + (innovative ? 1 : 0));
    EXPECT_EQ(inc.rank(), linalg::rank(m)) << "row " << r;
  }
}

TEST(IncrementalRank, MatchesBatchGf256) {
  incremental_matches_batch<gf::Gf256>(10, 12, 8);
}
TEST(IncrementalRank, MatchesBatchGf2_16) {
  incremental_matches_batch<gf::Gf2_16>(11, 10, 6);
}
TEST(IncrementalRank, MatchesBatchGf2) {
  // Over GF(2) dependent rows are common — good stress for the reducer.
  incremental_matches_batch<gf::Gf2>(12, 20, 8);
}

TEST(IncrementalRank, RejectsWrongArity) {
  linalg::IncrementalRank<Gf> inc(4);
  EXPECT_THROW(inc.absorb(std::vector<std::uint8_t>{1, 2}), std::invalid_argument);
}

TEST(IncrementalRank, CompleteAfterBasis) {
  linalg::IncrementalRank<Gf> inc(3);
  EXPECT_TRUE(inc.absorb({1, 0, 0}));
  EXPECT_TRUE(inc.absorb({1, 1, 0}));
  EXPECT_FALSE(inc.complete());
  EXPECT_TRUE(inc.absorb({1, 1, 1}));
  EXPECT_TRUE(inc.complete());
  EXPECT_FALSE(inc.absorb({5, 6, 7}));  // nothing is innovative now
}

TEST(IncrementalRank, ZeroRowNotInnovative) {
  linalg::IncrementalRank<Gf> inc(3);
  EXPECT_FALSE(inc.absorb({0, 0, 0}));
  EXPECT_EQ(inc.rank(), 0u);
}

}  // namespace
}  // namespace ncast
