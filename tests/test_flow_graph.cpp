// Flow-graph derivation tests: thread segments, failure breaks, node and
// tuple connectivity. These pin down the exact semantics the analysis
// experiments rely on.

#include "overlay/flow_graph.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ncast {
namespace {

using namespace overlay;

TEST(FlowGraph, FailureFreeNodeGetsFullDegree) {
  ThreadMatrix m(4);
  m.append_row(1, {0, 1});
  m.append_row(2, {1, 2});
  m.append_row(3, {0, 2});
  const auto fg = build_flow_graph(m);
  EXPECT_EQ(node_connectivity(fg, 1), 2);
  EXPECT_EQ(node_connectivity(fg, 2), 2);
  EXPECT_EQ(node_connectivity(fg, 3), 2);
}

TEST(FlowGraph, ParentFailureCostsOneUnit) {
  ThreadMatrix m(4);
  m.append_row(1, {0, 1});
  m.append_row(2, {0, 2});  // parent on column 0 is node 1
  m.mark_failed(1);
  const auto fg = build_flow_graph(m);
  // Node 2 loses the column-0 feed (broken at failed node 1) but keeps
  // column 2 straight from the server.
  EXPECT_EQ(node_connectivity(fg, 2), 1);
}

TEST(FlowGraph, DownstreamOfFailureCanRecoverViaMixing) {
  // Node 3 sits below failed node 1 on column 0, but its feed on column 0
  // comes from node 2, which re-injects information it gets on column 1.
  ThreadMatrix m(2);
  m.append_row(1, {0});
  m.append_row(2, {0, 1});
  m.append_row(3, {0});
  m.mark_failed(1);
  const auto fg = build_flow_graph(m);
  // Node 2: column 0 broken (failed parent), column 1 from server => 1.
  EXPECT_EQ(node_connectivity(fg, 2), 1);
  // Node 3: fed by node 2 on column 0; node 2 has 1 unit to give => 1.
  EXPECT_EQ(node_connectivity(fg, 3), 1);
}

TEST(FlowGraph, FlowConservationLimitsRelays) {
  // A relay with one live in-thread cannot serve two children at rate 1 each.
  ThreadMatrix m(3);
  m.append_row(1, {0, 1});   // relay
  m.mark_failed(1);
  m.append_row(2, {0, 2});
  const auto fg = build_flow_graph(m);
  EXPECT_EQ(node_connectivity(fg, 2), 1);  // column 0 dead, column 2 alive
}

TEST(FlowGraph, TapsTrackHangingEnds) {
  ThreadMatrix m(3);
  m.append_row(1, {0, 1});
  const auto fg = build_flow_graph(m);
  EXPECT_EQ(fg.tap[0], fg.vertex_of(1));
  EXPECT_EQ(fg.tap[1], fg.vertex_of(1));
  EXPECT_EQ(fg.tap[2], FlowGraph::kServerVertex);
  EXPECT_TRUE(fg.tap_alive[0]);
}

TEST(FlowGraph, DeadTapContributesNothing) {
  ThreadMatrix m(2);
  m.append_row(1, {0});
  m.mark_failed(1);
  const auto fg = build_flow_graph(m);
  EXPECT_FALSE(fg.tap_alive[0]);
  EXPECT_TRUE(fg.tap_alive[1]);
  EXPECT_EQ(tuple_connectivity(fg, {0}), 0);
  EXPECT_EQ(tuple_connectivity(fg, {1}), 1);
  EXPECT_EQ(tuple_connectivity(fg, {0, 1}), 1);
}

TEST(FlowGraph, EmptyCurtainTupleConnectivityIsTupleSize) {
  ThreadMatrix m(4);
  const auto fg = build_flow_graph(m);
  EXPECT_EQ(tuple_connectivity(fg, {0, 1, 2}), 3);
}

TEST(FlowGraph, TupleValidation) {
  ThreadMatrix m(3);
  const auto fg = build_flow_graph(m);
  EXPECT_THROW(tuple_connectivity(fg, {0, 0}), std::invalid_argument);
  EXPECT_THROW(tuple_connectivity(fg, {7}), std::out_of_range);
}

TEST(FlowGraph, FailureFreeTuplesHaveZeroDefect) {
  // Without failures, every tuple of hanging threads has full connectivity:
  // the k columns are k edge-disjoint server paths.
  Rng rng(3);
  ThreadMatrix m(6);
  NodeId next = 0;
  for (int i = 0; i < 40; ++i) {
    const auto picks = rng.sample_without_replacement(6, 3);
    m.append_row(next++, {picks.begin(), picks.end()});
  }
  const auto fg = build_flow_graph(m);
  for (ColumnId a = 0; a < 6; ++a) {
    for (ColumnId b = a + 1; b < 6; ++b) {
      EXPECT_EQ(tuple_connectivity(fg, {a, b}), 2);
    }
  }
  for (NodeId n : m.nodes_in_order()) {
    EXPECT_EQ(node_connectivity(fg, n), 3);
  }
}

TEST(FlowGraph, DepthsFollowCurtainOrder) {
  ThreadMatrix m(1);
  m.append_row(1, {0});
  m.append_row(2, {0});
  m.append_row(3, {0});
  const auto fg = build_flow_graph(m);
  const auto depths = node_depths(fg);
  EXPECT_EQ(depths[fg.vertex_of(1)], 1);
  EXPECT_EQ(depths[fg.vertex_of(2)], 2);
  EXPECT_EQ(depths[fg.vertex_of(3)], 3);
}

TEST(FlowGraph, FailedNodeUnreachable) {
  ThreadMatrix m(2);
  m.append_row(1, {0, 1});
  m.append_row(2, {0, 1});
  m.mark_failed(1);
  const auto fg = build_flow_graph(m);
  const auto depths = node_depths(fg);
  EXPECT_EQ(depths[fg.vertex_of(1)], -1);  // no alive in-edges
  EXPECT_EQ(depths[fg.vertex_of(2)], -1);  // both threads broken at node 1
  EXPECT_EQ(node_connectivity(fg, 2), 0);
}

TEST(FlowGraph, VertexOfValidation) {
  ThreadMatrix m(2);
  m.append_row(1, {0});
  const auto fg = build_flow_graph(m);
  EXPECT_EQ(fg.vertex_of(kServerNode), FlowGraph::kServerVertex);
  EXPECT_EQ(fg.vertex_of(1), 1u);
  EXPECT_THROW(fg.vertex_of(9), std::out_of_range);
}

TEST(FlowGraph, GraphIsAcyclic) {
  Rng rng(9);
  ThreadMatrix m(8);
  NodeId next = 0;
  for (int i = 0; i < 50; ++i) {
    const auto picks = rng.sample_without_replacement(8, 2);
    m.append_row(next++, {picks.begin(), picks.end()});
  }
  const auto fg = build_flow_graph(m);
  EXPECT_TRUE(graph::is_acyclic(fg.graph));
}

}  // namespace
}  // namespace ncast
