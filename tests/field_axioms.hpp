#pragma once
// Shared field-axiom checks, instantiated for each Galois field under test.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ncast::testing {

/// Draws `count` random field elements (including 0 and 1 explicitly).
template <typename Field>
std::vector<typename Field::value_type> sample_elements(std::size_t count,
                                                        Rng& rng) {
  using V = typename Field::value_type;
  std::vector<V> v{V{0}, V{1}};
  for (std::size_t i = 0; i < count; ++i) {
    v.push_back(static_cast<V>(rng.below(Field::order)));
  }
  return v;
}

template <typename Field>
void check_additive_group(const std::vector<typename Field::value_type>& xs) {
  using V = typename Field::value_type;
  for (V a : xs) {
    EXPECT_EQ(Field::add(a, V{0}), a);       // identity
    EXPECT_EQ(Field::add(a, a), V{0});       // characteristic 2: self-inverse
    for (V b : xs) {
      EXPECT_EQ(Field::add(a, b), Field::add(b, a));  // commutativity
      EXPECT_EQ(Field::sub(Field::add(a, b), b), a);  // sub inverts add
      for (V c : xs) {
        EXPECT_EQ(Field::add(Field::add(a, b), c),
                  Field::add(a, Field::add(b, c)));  // associativity
      }
    }
  }
}

template <typename Field>
void check_multiplicative_group(const std::vector<typename Field::value_type>& xs) {
  using V = typename Field::value_type;
  for (V a : xs) {
    EXPECT_EQ(Field::mul(a, V{1}), a);     // identity
    EXPECT_EQ(Field::mul(a, V{0}), V{0});  // absorbing zero
    if (a != V{0}) {
      EXPECT_EQ(Field::mul(a, Field::inv(a)), V{1});  // inverse
      EXPECT_EQ(Field::div(a, a), V{1});
    }
    for (V b : xs) {
      EXPECT_EQ(Field::mul(a, b), Field::mul(b, a));  // commutativity
      if (b != V{0}) {
        EXPECT_EQ(Field::mul(Field::div(a, b), b), a);  // div inverts mul
      }
      for (V c : xs) {
        EXPECT_EQ(Field::mul(Field::mul(a, b), c),
                  Field::mul(a, Field::mul(b, c)));  // associativity
        EXPECT_EQ(Field::mul(a, Field::add(b, c)),
                  Field::add(Field::mul(a, b), Field::mul(a, c)));  // distributivity
      }
    }
  }
}

template <typename Field>
void check_pow(const std::vector<typename Field::value_type>& xs) {
  using V = typename Field::value_type;
  for (V a : xs) {
    EXPECT_EQ(Field::pow(a, 0), V{1});
    EXPECT_EQ(Field::pow(a, 1), a);
    V expect = V{1};
    for (std::uint32_t e = 0; e < 8; ++e) {
      EXPECT_EQ(Field::pow(a, e), expect);
      expect = Field::mul(expect, a);
    }
  }
  // Fermat: a^(order-1) == 1 for a != 0.
  for (V a : xs) {
    if (a != V{0}) {
      EXPECT_EQ(Field::pow(a, Field::order - 1), V{1});
    }
  }
}

template <typename Field>
void check_region_ops(Rng& rng, std::size_t len) {
  using V = typename Field::value_type;
  std::vector<V> dst(len), src(len);
  for (auto& x : dst) x = static_cast<V>(rng.below(Field::order));
  for (auto& x : src) x = static_cast<V>(rng.below(Field::order));
  const auto c = static_cast<V>(rng.below(Field::order));

  // region_add == elementwise add
  auto d1 = dst;
  Field::region_add(d1.data(), src.data(), len);
  for (std::size_t i = 0; i < len; ++i) {
    ASSERT_EQ(d1[i], Field::add(dst[i], src[i])) << "region_add at " << i;
  }

  // region_madd == dst + c*src
  auto d2 = dst;
  Field::region_madd(d2.data(), src.data(), c, len);
  for (std::size_t i = 0; i < len; ++i) {
    ASSERT_EQ(d2[i], Field::add(dst[i], Field::mul(c, src[i])))
        << "region_madd at " << i;
  }

  // region_mul == c*dst
  auto d3 = dst;
  Field::region_mul(d3.data(), c, len);
  for (std::size_t i = 0; i < len; ++i) {
    ASSERT_EQ(d3[i], Field::mul(c, dst[i])) << "region_mul at " << i;
  }
}

}  // namespace ncast::testing
