// The message-plane scenario runner, and the cross-plane equivalence the
// refactor must preserve (Lemma 1): a seeded sequence of join/leave/crash
// driven through real hello/good-bye/complaint messages over the kernel
// transport must leave the ServerNode's thread matrix identical to the same
// sequence issued as direct CurtainServer calls. The mapping is fixed by
// construction — CurtainServer assigns ids 0,1,2,... in join order, the
// message plane assigns addresses 1,2,3,... in spawn order — so message
// address a corresponds to CurtainServer node a - 1.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "node/protocol_scenario.hpp"
#include "obs/trace.hpp"
#include "overlay/curtain_server.hpp"
#include "sim/link_model.hpp"

namespace ncast::node {
namespace {

/// Asserts the message-plane matrix equals the direct-call matrix under the
/// address = id + 1 mapping: same curtain order, same rows, same tags.
void expect_matrix_equivalent(const overlay::ThreadMatrix& via_messages,
                              const overlay::ThreadMatrix& via_calls) {
  ASSERT_EQ(via_messages.k(), via_calls.k());
  const auto msg_order = via_messages.nodes_in_order();
  const auto call_order = via_calls.nodes_in_order();
  ASSERT_EQ(msg_order.size(), call_order.size());
  for (std::size_t i = 0; i < msg_order.size(); ++i) {
    EXPECT_EQ(msg_order[i], call_order[i] + 1) << "curtain order row " << i;
    const auto& msg_row = via_messages.row(msg_order[i]);
    const auto& call_row = via_calls.row(call_order[i]);
    EXPECT_EQ(msg_row.threads, call_row.threads) << "row of address "
                                                 << msg_order[i];
    EXPECT_EQ(msg_row.failed, call_row.failed);
  }
}

/// A small, quiet baseline: ideal fixed-latency links, content short enough
/// to decode, silence timers generous enough that nothing complains.
ProtocolScenarioSpec quiet_spec(std::uint64_t seed) {
  ProtocolScenarioSpec spec;
  spec.k = 6;
  spec.default_degree = 2;
  spec.generations = 2;
  spec.generation_size = 8;
  spec.symbols = 8;
  spec.silence_timeout = 12;
  spec.repair_delay = 2.0;
  spec.seed = seed;
  return spec;
}

TEST(ProtocolScenario, HappyPathJoinsAndDecodes) {
  ProtocolScenarioSpec spec = quiet_spec(21);
  spec.faults.join_burst(1.0, 6, 1.0);

  const auto report = run_scenario(spec);

  ASSERT_EQ(report.outcomes.size(), 6u);
  for (const auto& o : report.outcomes) {
    EXPECT_TRUE(o.joined) << "address " << o.address;
    EXPECT_TRUE(o.decoded) << "address " << o.address;
    EXPECT_EQ(o.join_retries, 0u);  // nothing is lost on ideal links
    EXPECT_GE(o.join_latency, 2.0);  // hello out + accept back, 1.0 each way
  }
  EXPECT_DOUBLE_EQ(report.decoded_fraction(), 1.0);
  EXPECT_EQ(report.total_complaints(), 0u);
  EXPECT_EQ(report.repairs_done, 0u);
  EXPECT_EQ(report.messages_dropped, 0u);
  EXPECT_EQ(report.matrix.row_count(), 6u);
  EXPECT_GT(report.max_in_flight, 0u);
}

TEST(ProtocolScenario, CrossPlaneEquivalenceJoinsAndLeaves) {
  // Message plane: 8 arrivals at distinct times, then two good-byes.
  ProtocolScenarioSpec spec = quiet_spec(31);
  spec.faults.join_burst(1.0, 8, 1.0);
  spec.faults.leave_join_at(20.0, 2).leave_join_at(24.0, 5);

  const auto report = run_scenario(spec);

  // Guard the comparison: no complaint fired, so the only matrix mutations
  // were the planned joins and leaves.
  EXPECT_EQ(report.total_complaints(), 0u);
  EXPECT_EQ(report.repairs_done, 0u);
  for (const auto& o : report.outcomes) EXPECT_TRUE(o.joined);

  // Direct plane: the same sequence as CurtainServer calls on the same seed.
  overlay::CurtainServer direct(spec.k, spec.default_degree, Rng(spec.seed));
  for (int i = 0; i < 8; ++i) direct.join();
  direct.leave(2);
  direct.leave(5);

  expect_matrix_equivalent(report.matrix, direct.matrix());
}

TEST(ProtocolScenario, CrossPlaneEquivalenceCrashAndRepair) {
  // Crash the first joiner once the overlay is deep enough that it has
  // children on its columns; their complaints must drive a repair whose
  // splice leaves the matrix exactly as report_failure + repair would.
  ProtocolScenarioSpec spec = quiet_spec(41);
  spec.k = 6;
  spec.default_degree = 3;
  spec.silence_timeout = 8;
  spec.faults.join_burst(1.0, 10, 1.0);
  spec.faults.crash_join_at(40.0, 0);

  const auto report = run_scenario(spec);

  // Exactly one repair: the crashed node's. A cascade (children of a starved
  // node complaining about it) would show up as extra repairs here.
  EXPECT_EQ(report.repairs_done, 1u);
  EXPECT_GE(report.total_complaints(), 1u);
  EXPECT_GT(report.last_repair_time, 40.0);

  overlay::CurtainServer direct(spec.k, spec.default_degree, Rng(spec.seed));
  for (int i = 0; i < 10; ++i) direct.join();
  direct.report_failure(0);  // address 1 <-> CurtainServer node 0
  direct.repair(0);

  expect_matrix_equivalent(report.matrix, direct.matrix());
}

TEST(ProtocolScenario, JoinRetriesPushHellosThroughLossyControlLinks) {
  ProtocolScenarioSpec spec = quiet_spec(51);
  spec.transport.control_loss = sim::LossSpec::bernoulli(0.4);
  spec.join_retry = 3.0;
  // Retries back off exponentially (capped), so the auto-sized horizon only
  // leaves a handful of attempts; give the capped-backoff phase room to land
  // a hello+accept pair through the 40% loss.
  spec.horizon = 400.0;
  spec.faults.join_burst(1.0, 8, 2.0);

  const auto report = run_scenario(spec);

  // 40% control loss eats hellos and accepts; the retry timer must carry
  // every client through anyway.
  for (const auto& o : report.outcomes) {
    EXPECT_TRUE(o.joined) << "address " << o.address;
  }
  EXPECT_GT(report.total_join_retries(), 0u);
  EXPECT_GT(report.control_dropped, 0u);
}

TEST(ProtocolScenario, RepairConvergesUnderControlLoss) {
  ProtocolScenarioSpec spec = quiet_spec(61);
  spec.default_degree = 3;
  spec.silence_timeout = 8;
  spec.transport.control_loss = sim::LossSpec::bernoulli(0.1);
  spec.faults.join_burst(1.0, 10, 1.0);
  spec.faults.crash_join_at(40.0, 0);

  const auto report = run_scenario(spec);

  // Complaints retransmit with backoff until one lands, so the repair may be
  // late but must not be lost.
  EXPECT_GE(report.repairs_done, 1u);
  EXPECT_GT(report.last_repair_time, 40.0);
  EXPECT_FALSE(report.matrix.contains(1));  // the crashed row was spliced out
}

TEST(ProtocolScenario, FalsePositiveRepairReadmitsTheEvictedNode) {
  // Under control loss an attach can vanish, starving a child whose
  // complaints then convict a perfectly healthy parent: the server splices
  // the parent out while it is still alive and streaming. The parent's own
  // complaints — proof of life — must win it re-admission through the join
  // path instead of being dropped on the floor, or it starves forever.
  // This configuration produced permanent orphans before re-admission
  // existed (decoded fraction stuck at ~0.9 regardless of horizon).
  ProtocolScenarioSpec spec;
  spec.k = 12;
  spec.default_degree = 3;
  spec.generations = 2;
  spec.generation_size = 16;
  spec.symbols = 8;
  spec.silence_timeout = 8;
  spec.repair_delay = 2.0;
  spec.join_retry = 4.0;
  spec.seed = 0xE230;
  spec.horizon = 800.0;
  spec.transport.latency = sim::LatencySpec::uniform(0.5, 1.5);
  spec.transport.control_loss = sim::LossSpec::bernoulli(0.10);
  spec.faults.join_burst(1.0, 12, 1.0);
  spec.faults.crash_join_at(50.0, 0);
  spec.faults.crash_join_at(55.0, 1);

  const auto report = run_scenario_sharded(spec, 4, 2);

  EXPECT_EQ(report.decoded_fraction(), 1.0);
  for (const auto& o : report.outcomes) {
    if (o.crashed) continue;
    EXPECT_TRUE(o.joined) << "address " << o.address;
    // Nobody healthy may end the run evicted: a false-positive repair must
    // be undone by re-admission, not left as a permanent hole.
    EXPECT_TRUE(report.matrix.contains(o.address)) << "address " << o.address;
  }
}

TEST(ProtocolScenario, LeaveOfCrashedClientIsIgnored) {
  // A leave scheduled after a crash must not send a good-bye from the grave.
  ProtocolScenarioSpec spec = quiet_spec(71);
  spec.faults.join_burst(1.0, 4, 1.0);
  spec.faults.crash_join_at(20.0, 3);
  spec.faults.leave_join_at(25.0, 3);

  const auto report = run_scenario(spec);
  ASSERT_EQ(report.outcomes.size(), 4u);
  EXPECT_TRUE(report.outcomes[3].crashed);
  EXPECT_FALSE(report.outcomes[3].departed);
}

#if NCAST_OBS_ENABLED

TEST(ProtocolScenarioTrace, LossyJoinChainReconstructsBySpanId) {
  // The tentpole's acceptance shape: under control loss, at least one join
  // episode's full retry chain — hello retransmission(s), the accept
  // delivery, the node's first rank advance — must group under one span id
  // in the process trace, with nothing but the span linking the pieces.
  obs::trace().clear();
  ProtocolScenarioSpec spec = quiet_spec(51);
  spec.transport.control_loss = sim::LossSpec::bernoulli(0.4);
  spec.join_retry = 3.0;
  spec.faults.join_burst(1.0, 8, 2.0);
  const auto report = run_scenario(spec);
  ASSERT_GT(report.total_join_retries(), 0u);

  struct Chain {
    bool retried = false, accepted = false, advanced = false;
  };
  std::map<obs::SpanId, Chain> chains;
  for (const auto& e : obs::trace().events_in_order()) {
    if (e.span == obs::kNoSpan) continue;
    if (e.kind == obs::TraceKind::kMsgRetry &&
        e.b == static_cast<std::uint64_t>(MessageType::kJoinRequest)) {
      chains[e.span].retried = true;
    } else if (e.kind == obs::TraceKind::kMsgDeliver &&
               e.b == static_cast<std::uint64_t>(MessageType::kJoinAccept)) {
      chains[e.span].accepted = true;
    } else if (e.kind == obs::TraceKind::kRankAdvance) {
      chains[e.span].advanced = true;
    }
  }
  bool complete = false;
  for (const auto& [span, c] : chains) {
    if (c.retried && c.accepted && c.advanced) complete = true;
  }
  EXPECT_TRUE(complete)
      << "no join span carries retry + accept + rank advance";
}

TEST(ProtocolScenarioTrace, RepairSpanIsParentedOnTheComplaint) {
  // The complaint/repair cycle as a span tree: the client opens a complaint
  // span, its complaint message carries it, and the server's repair span is
  // born with that span as parent and closes when the splice completes.
  obs::trace().clear();
  ProtocolScenarioSpec spec = quiet_spec(41);
  spec.default_degree = 3;
  spec.silence_timeout = 8;
  spec.faults.join_burst(1.0, 10, 1.0);
  spec.faults.crash_join_at(40.0, 0);
  const auto report = run_scenario(spec);
  ASSERT_EQ(report.repairs_done, 1u);

  std::set<obs::SpanId> complaint_spans;
  obs::SpanId repair_span = obs::kNoSpan;
  obs::SpanId repair_parent = obs::kNoSpan;
  bool repair_closed = false;
  for (const auto& e : obs::trace().events_in_order()) {
    if (e.kind == obs::TraceKind::kSpanBegin && e.detail == "complaint") {
      complaint_spans.insert(e.span);
    } else if (e.kind == obs::TraceKind::kSpanBegin && e.detail == "repair") {
      repair_span = e.span;
      repair_parent = e.parent;
    } else if (e.kind == obs::TraceKind::kSpanEnd && e.detail == "repair" &&
               e.span == repair_span) {
      repair_closed = true;
    }
  }
  ASSERT_FALSE(complaint_spans.empty());
  ASSERT_NE(repair_span, obs::kNoSpan);
  // Several children may complain about the same dead parent; the repair is
  // parented on whichever complaint reached the server first.
  EXPECT_TRUE(complaint_spans.count(repair_parent))
      << "repair parent " << repair_parent << " is not a complaint span";
  EXPECT_TRUE(repair_closed);
}

TEST(ProtocolScenarioTrace, SpanFieldDoesNotChangeControlBytes) {
  // Message::span is telemetry context, not wire payload: the byte
  // accounting (and with it every gossip-overhead claim) must be identical
  // whether or not an episode stamped its messages.
  Message m;
  m.type = MessageType::kComplaint;
  const std::size_t before = m.control_size();
  m.span = 12345;
  EXPECT_EQ(m.control_size(), before);
}

#endif  // NCAST_OBS_ENABLED

}  // namespace
}  // namespace ncast::node
