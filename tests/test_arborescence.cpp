// Edge-disjoint arborescence packing (Edmonds/Lovász) tests.

#include "graph/arborescence.hpp"

#include <gtest/gtest.h>

#include "graph/maxflow.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using graph::Digraph;

TEST(Arborescence, SingleTreeOnPath) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto packing = graph::pack_arborescences(g, 0, 1);
  ASSERT_TRUE(packing.has_value());
  EXPECT_TRUE(graph::validate_packing(g, 0, *packing));
}

TEST(Arborescence, TwoTreesOnDoubledPath) {
  Digraph g(3);
  for (int rep = 0; rep < 2; ++rep) {
    g.add_edge(0, 1);
    g.add_edge(1, 2);
  }
  const auto packing = graph::pack_arborescences(g, 0, 2);
  ASSERT_TRUE(packing.has_value());
  EXPECT_EQ(packing->size(), 2u);
  EXPECT_TRUE(graph::validate_packing(g, 0, *packing));
}

TEST(Arborescence, InsufficientConnectivityFails) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(graph::pack_arborescences(g, 0, 2).has_value());
}

TEST(Arborescence, CompleteDigraphPacksNMinusOne) {
  const std::size_t n = 5;
  Digraph g(n);
  for (graph::Vertex u = 0; u < n; ++u) {
    for (graph::Vertex v = 0; v < n; ++v) {
      if (u != v) g.add_edge(u, v);
    }
  }
  // Every vertex has in-degree n-1, so connectivity from 0 is n-1 = 4.
  const auto packing = graph::pack_arborescences(g, 0, n - 1);
  ASSERT_TRUE(packing.has_value());
  EXPECT_TRUE(graph::validate_packing(g, 0, *packing));
}

TEST(Arborescence, DiamondWithCrossEdges) {
  // 0 -> {1,2} doubled; {1,2} -> 3 doubled; connectivity(3) = 2? No:
  // 0->1,0->1,0->2,0->2,1->3,1->3,2->3,2->3 gives flow(0,3)=4 but
  // flow(0,1)=2, so only 2 trees exist.
  Digraph g(4);
  for (int rep = 0; rep < 2; ++rep) {
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
  }
  const auto packing = graph::pack_arborescences(g, 0, 2);
  ASSERT_TRUE(packing.has_value());
  EXPECT_TRUE(graph::validate_packing(g, 0, *packing));
  EXPECT_FALSE(graph::pack_arborescences(g, 0, 3).has_value());
}

TEST(Arborescence, ValidatorRejectsBrokenPacking) {
  Digraph g(3);
  const auto e01 = g.add_edge(0, 1);
  const auto e12 = g.add_edge(1, 2);
  g.add_edge(0, 1);
  g.add_edge(1, 2);

  // Edge reuse across trees must be rejected.
  graph::Arborescence a, b;
  a.parent_edge = {graph::Arborescence::kNoEdge, e01, e12};
  b.parent_edge = {graph::Arborescence::kNoEdge, e01, e12};
  EXPECT_TRUE(graph::validate_packing(g, 0, {a}));
  EXPECT_FALSE(graph::validate_packing(g, 0, {a, b}));

  // Wrong head vertex must be rejected.
  graph::Arborescence c;
  c.parent_edge = {graph::Arborescence::kNoEdge, e12, e12};
  EXPECT_FALSE(graph::validate_packing(g, 0, {c}));
}

TEST(Arborescence, RandomLayeredGraphsPack) {
  // Property sweep: layered random graphs built like the curtain (every
  // vertex picks d in-edges from earlier vertices) have connectivity d and
  // must pack exactly d arborescences.
  Rng rng(21);
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint32_t d = 2 + (trial % 2);
    const std::size_t n = 10;
    Digraph g(1);
    // Virtual server vertex 0 with d "thread" stubs: model as d parallel
    // edges from 0 to each of the first layer of nodes via sampling below.
    std::vector<graph::Vertex> vertices{0};
    for (std::size_t i = 0; i < n; ++i) {
      const auto v = g.add_vertex();
      // Pick d predecessors (with repetition allowed across picks but each
      // pick adds a distinct parallel edge).
      for (std::uint32_t j = 0; j < d; ++j) {
        const auto u = vertices[rng.below(vertices.size())];
        g.add_edge(u, v);
      }
      vertices.push_back(v);
    }
    // Server out-capacity is unbounded here, so connectivity is exactly d.
    ASSERT_EQ(graph::min_connectivity(g, 0), d);
    const auto packing = graph::pack_arborescences(g, 0, d);
    ASSERT_TRUE(packing.has_value()) << "trial " << trial;
    EXPECT_TRUE(graph::validate_packing(g, 0, *packing));
    EXPECT_FALSE(graph::pack_arborescences(g, 0, d + 1).has_value());
  }
}

TEST(Arborescence, RootOutOfRangeThrows) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(graph::pack_arborescences(g, 5, 1), std::out_of_range);
}

}  // namespace
}  // namespace ncast
