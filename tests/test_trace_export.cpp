// Golden-file tests for the two trace exporters: the ncast.trace.v1 JSONL
// format and the Chrome trace_event JSON (Perfetto / chrome://tracing).
// These pin the exact byte-level output — field order, escaping, span/parent
// links — because downstream consumers (bench_validate, grep-based
// post-mortems, the trace viewer) parse these files without a schema
// negotiation step. A formatting change that breaks a golden here would
// break them too.

#include "obs/trace_event.hpp"

#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace ncast::obs {
namespace {

#if NCAST_OBS_ENABLED

// One buffer exercising every exporter feature: a parented span pair, a
// message lifecycle event inside the span, an unlinked instant, and a detail
// string needing escapes.
TraceBuffer golden_buffer() {
  TraceBuffer tb(8);
  const SpanId join = tb.new_span();    // 1
  const SpanId repair = tb.new_span();  // 2
  tb.set_now(1.0);
  tb.emit(TraceKind::kSpanBegin, 7, 0, 0, "join", join);
  tb.set_now(1.5);
  tb.emit(TraceKind::kMsgRetry, 7, 1, 0, {}, join);
  tb.set_now(2.0);
  tb.emit(TraceKind::kSpanBegin, 3, 4, 7, "repair", repair, join);
  tb.set_now(2.25);
  tb.emit(TraceKind::kMsgDrop, 7, 0, 5, "loss\"x\"", join);
  tb.set_now(3.0);
  tb.emit(TraceKind::kSpanEnd, 3, 0, 0, "repair", repair);
  tb.set_now(4.0);
  tb.emit(TraceKind::kCrash, 9);
  return tb;
}

TEST(TraceJsonlGolden, ExactOutput) {
  const std::string expected =
      R"({"schema":"ncast.trace.v1","capacity":8,"total_emitted":6,"dropped_events":0})"
      "\n"
      R"({"t":1,"kind":"span_begin","node":7,"a":0,"b":0,"span":1,"detail":"join"})"
      "\n"
      R"({"t":1.5,"kind":"msg_retry","node":7,"a":1,"b":0,"span":1})"
      "\n"
      R"({"t":2,"kind":"span_begin","node":3,"a":4,"b":7,"span":2,"parent":1,"detail":"repair"})"
      "\n"
      R"({"t":2.25,"kind":"msg_drop","node":7,"a":0,"b":5,"span":1,"detail":"loss\"x\""})"
      "\n"
      R"({"t":3,"kind":"span_end","node":3,"a":0,"b":0,"span":2,"detail":"repair"})"
      "\n"
      R"({"t":4,"kind":"crash","node":9,"a":0,"b":0})"
      "\n";
  EXPECT_EQ(golden_buffer().to_jsonl(), expected);
}

TEST(TraceEventGolden, ExactOutput) {
  // ts = t * 1000 (sim units exported as ms so microsecond-native viewers
  // show readable numbers); spans become async b/e pairs keyed by span id,
  // everything else thread-scoped instants.
  const std::string expected =
      R"({"traceEvents":[)"
      R"({"name":"join","cat":"span","ph":"b","ts":1000,"pid":0,"tid":7,"id":"1","args":{"span":1}},)"
      R"({"name":"msg_retry","cat":"msg_retry","ph":"i","ts":1500,"pid":0,"tid":7,"s":"t","args":{"a":1,"b":0,"span":1}},)"
      R"({"name":"repair","cat":"span","ph":"b","ts":2000,"pid":0,"tid":3,"id":"2","args":{"span":2,"parent":1,"a":4,"b":7}},)"
      R"({"name":"msg_drop","cat":"msg_drop","ph":"i","ts":2250,"pid":0,"tid":7,"s":"t","args":{"a":0,"b":5,"span":1,"detail":"loss\"x\""}},)"
      R"({"name":"repair","cat":"span","ph":"e","ts":3000,"pid":0,"tid":3,"id":"2","args":{"span":2}},)"
      R"({"name":"crash","cat":"crash","ph":"i","ts":4000,"pid":0,"tid":9,"s":"t","args":{"a":0,"b":0}})"
      R"(],"displayTimeUnit":"ms","otherData":{"schema":"ncast.trace_event.v1",)"
      R"("capacity":8,"total_emitted":6,"dropped_events":0}})";
  EXPECT_EQ(to_trace_event_json(golden_buffer()), expected);
}

TEST(TraceEventExport, EndReusesTheBeginsName) {
  TraceBuffer tb(4);
  const SpanId s = tb.new_span();
  tb.emit(TraceKind::kSpanBegin, 1, 0, 0, "complaint", s);
  tb.emit(TraceKind::kSpanEnd, 1, 0, 0, {}, s);
  const std::string out = to_trace_event_json(tb);
  // Both halves of the async pair must agree on the name or the viewer
  // cannot close the bar.
  EXPECT_NE(out.find(R"("name":"complaint","cat":"span","ph":"b")"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find(R"("name":"complaint","cat":"span","ph":"e")"),
            std::string::npos)
      << out;
}

TEST(TraceEventExport, OrphanEndFallsBackToGenericName) {
  // The begin was overwritten by ring wraparound: the end must still emit a
  // well-formed record.
  TraceBuffer tb(4);
  const SpanId s = tb.new_span();
  tb.emit(TraceKind::kSpanEnd, 1, 0, 0, {}, s);
  EXPECT_NE(to_trace_event_json(tb).find(R"("name":"span","cat":"span")"),
            std::string::npos);
}

TEST(TraceEventExport, HeaderCarriesDroppedEvents) {
  TraceBuffer tb(2);
  for (int i = 0; i < 5; ++i) tb.emit(TraceKind::kJoin, 1);
  EXPECT_NE(to_trace_event_json(tb).find(R"("dropped_events":3)"),
            std::string::npos);
}

#else  // !NCAST_OBS_ENABLED

TEST(TraceEventExport, DisabledBufferExportsEmptyTrace) {
  TraceBuffer tb(4);
  tb.emit(TraceKind::kJoin, 1);
  const std::string out = to_trace_event_json(tb);
  EXPECT_NE(out.find(R"("traceEvents":[])"), std::string::npos) << out;
  EXPECT_NE(out.find(R"("schema":"ncast.trace_event.v1")"), std::string::npos);
}

#endif  // NCAST_OBS_ENABLED

}  // namespace
}  // namespace ncast::obs
