// Tests for the console table renderer used by the benchmark harness.

#include "util/table.hpp"

#include <gtest/gtest.h>

namespace ncast {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "x"});
  t.add_row({"a", "1.5"});
  t.add_row({"longer", "22"});
  const std::string r = t.render();
  EXPECT_NE(r.find("| name   | x   |"), std::string::npos);
  EXPECT_NE(r.find("| a      | 1.5 |"), std::string::npos);
  EXPECT_NE(r.find("| longer | 22  |"), std::string::npos);
}

TEST(Table, HeaderSeparatorPresent) {
  Table t({"h"});
  t.add_row({"v"});
  const std::string r = t.render();
  EXPECT_NE(r.find("|---|"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Fmt, FixedDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Fmt, Scientific) {
  EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04");
  EXPECT_EQ(fmt_sci(0.00098, 1), "9.8e-04");
}

}  // namespace
}  // namespace ncast
