// SIMD/scalar parity for the GF region kernels. Every region operation, for
// both fields, at every size in 0..67 plus 1023/1024/1025 (straddling the
// vector main-loop boundaries and the dispatch threshold), must agree exactly
// with a per-element reference computed from the field's scalar mul/add —
// under every instruction-set tier the running CPU supports. A randomized
// decode round-trip then cross-checks that a generation decoded under a
// vector tier and under forced scalar produce identical source data.
//
// Tiers are flipped in-process via set_tier_for_testing(); the ctest suite
// additionally re-runs the full field/codec tests with NCAST_FORCE_SCALAR=1
// in the environment (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/structure.hpp"
#include "coding/structured_decoder.hpp"
#include "gf/dispatch.hpp"
#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

/// All tiers the running CPU can execute, scalar first.
std::vector<gf::Tier> supported_tiers() {
  std::vector<gf::Tier> tiers{gf::Tier::kScalar};
  const auto best = static_cast<int>(gf::best_supported_tier());
  for (int t = 1; t <= best; ++t) tiers.push_back(static_cast<gf::Tier>(t));
  return tiers;
}

/// Restores the CPU-selected tier when a test scope ends, pass or fail.
struct TierGuard {
  ~TierGuard() { gf::set_tier_for_testing(gf::best_supported_tier()); }
};

constexpr std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  10,
                                  11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21,
                                  22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32,
                                  33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43,
                                  44, 45, 46, 47, 48, 49, 50, 51, 52, 53, 54,
                                  55, 56, 57, 58, 59, 60, 61, 62, 63, 64, 65,
                                  66, 67, 1023, 1024, 1025};

template <typename Field>
std::vector<typename Field::value_type> random_region(std::size_t n, Rng& rng) {
  std::vector<typename Field::value_type> v(n);
  for (auto& x : v) {
    x = static_cast<typename Field::value_type>(rng.below(Field::order));
  }
  return v;
}

/// Exercises madd, mul, and add at size n with coefficient c and compares
/// against the per-element reference.
template <typename Field>
void check_ops(std::size_t n, typename Field::value_type c, Rng& rng) {
  using V = typename Field::value_type;
  const auto src = random_region<Field>(n, rng);
  const auto base = random_region<Field>(n, rng);

  std::vector<V> want_madd = base;
  std::vector<V> want_mul = base;
  std::vector<V> want_add = base;
  for (std::size_t i = 0; i < n; ++i) {
    want_madd[i] = Field::add(base[i], Field::mul(c, src[i]));
    want_mul[i] = Field::mul(c, base[i]);
    want_add[i] = Field::add(base[i], src[i]);
  }

  std::vector<V> got = base;
  Field::region_madd(got.data(), src.data(), c, n);
  ASSERT_EQ(got, want_madd) << "madd n=" << n << " c=" << +c << " tier="
                            << gf::tier_name(gf::active_tier());

  got = base;
  Field::region_mul(got.data(), c, n);
  ASSERT_EQ(got, want_mul) << "mul n=" << n << " c=" << +c << " tier="
                           << gf::tier_name(gf::active_tier());

  got = base;
  Field::region_add(got.data(), src.data(), n);
  ASSERT_EQ(got, want_add) << "add n=" << n << " tier="
                           << gf::tier_name(gf::active_tier());
}

template <typename Field>
void run_parity(std::uint64_t seed) {
  TierGuard guard;
  for (const gf::Tier tier : supported_tiers()) {
    gf::set_tier_for_testing(tier);
    ASSERT_EQ(gf::active_tier(), tier);
    Rng rng(seed);
    for (const std::size_t n : kSizes) {
      // Edge coefficients (0, 1, max) plus random ones.
      check_ops<Field>(n, typename Field::value_type{0}, rng);
      check_ops<Field>(n, typename Field::value_type{1}, rng);
      check_ops<Field>(
          n, static_cast<typename Field::value_type>(Field::order - 1), rng);
      for (int k = 0; k < 3; ++k) {
        check_ops<Field>(
            n, static_cast<typename Field::value_type>(rng.below(Field::order)),
            rng);
      }
    }
  }
}

TEST(GfKernelParity, Gf256AllTiersAllSizes) { run_parity<gf::Gf256>(101); }

TEST(GfKernelParity, Gf2_16AllTiersAllSizes) { run_parity<gf::Gf2_16>(202); }

TEST(GfKernelParity, TierNamesAndForcedOrder) {
  EXPECT_STREQ(gf::tier_name(gf::Tier::kScalar), "scalar");
  EXPECT_STREQ(gf::tier_name(gf::Tier::kSsse3), "ssse3");
  EXPECT_STREQ(gf::tier_name(gf::Tier::kAvx2), "avx2");
  EXPECT_STREQ(gf::tier_name(gf::Tier::kGfni), "gfni");
  TierGuard guard;
  // Requesting a tier never exceeds what the CPU supports.
  gf::set_tier_for_testing(gf::Tier::kGfni);
  EXPECT_LE(static_cast<int>(gf::active_tier()),
            static_cast<int>(gf::best_supported_tier()));
}

/// The same packet stream must decode to the same source under every tier —
/// elimination order and pivot choices are tier-independent, so this catches
/// any kernel that is "close but not equal" on real codec data.
template <typename Field>
void run_decode_cross_check(std::size_t g, std::size_t symbols,
                            std::uint64_t seed) {
  using V = typename Field::value_type;
  Rng source_rng(seed);
  std::vector<std::vector<V>> source(g, std::vector<V>(symbols));
  for (auto& row : source) {
    for (auto& v : row) v = static_cast<V>(source_rng.below(Field::order));
  }
  const coding::SourceEncoder<Field> enc(0, source);
  std::vector<coding::CodedPacket<Field>> packets;
  Rng packet_rng(seed + 1);
  for (std::size_t i = 0; i < g + 4; ++i) packets.push_back(enc.emit(packet_rng));

  TierGuard guard;
  for (const gf::Tier tier : supported_tiers()) {
    gf::set_tier_for_testing(tier);
    coding::Decoder<Field> dec(0, g, symbols);
    for (const auto& p : packets) {
      if (dec.complete()) break;
      dec.absorb(p);
    }
    ASSERT_TRUE(dec.complete()) << "tier=" << gf::tier_name(tier);
    EXPECT_EQ(dec.source_packets(), source) << "tier=" << gf::tier_name(tier);
  }
}

TEST(GfKernelParity, DecodeRoundTripCrossCheckGf256) {
  run_decode_cross_check<gf::Gf256>(24, 300, 7);
}

TEST(GfKernelParity, DecodeRoundTripCrossCheckGf2_16) {
  run_decode_cross_check<gf::Gf2_16>(12, 150, 8);
}

/// Same cross-check through the structured codec: one packet stream, decoded
/// under every tier with the auto-selected policy (band elimination for
/// banded structures, per-class propagation for overlapped ones). Innovation
/// verdicts and decoded bytes must be tier-independent bit for bit.
template <typename Field>
void run_structured_decode_cross_check(const coding::GenerationStructure& s,
                                       std::size_t symbols,
                                       std::uint64_t seed) {
  using V = typename Field::value_type;
  Rng source_rng(seed);
  std::vector<V> flat(s.g * symbols);
  for (auto& v : flat) v = static_cast<V>(source_rng.below(Field::order));
  const coding::SourceEncoder<Field> enc(0, s, flat, symbols);
  std::vector<coding::CodedPacket<Field>> packets;
  Rng packet_rng(seed + 1);
  for (std::size_t i = 0; i < 6 * s.g; ++i) {
    packets.push_back(enc.emit(packet_rng));
  }

  TierGuard guard;
  std::vector<std::vector<V>> want;
  std::vector<int> want_verdicts;
  for (const gf::Tier tier : supported_tiers()) {
    gf::set_tier_for_testing(tier);
    coding::StructuredDecoder<Field> dec(0, s, symbols);
    std::vector<int> verdicts;
    for (const auto& p : packets) {
      if (dec.complete()) break;
      verdicts.push_back(dec.absorb(p) ? 1 : 0);
    }
    ASSERT_TRUE(dec.complete()) << "tier=" << gf::tier_name(tier);
    const auto got = dec.source_packets();
    if (want.empty()) {
      want = got;
      want_verdicts = verdicts;
      for (std::size_t i = 0; i < s.g; ++i) {
        ASSERT_EQ(got[i], std::vector<V>(flat.begin() + i * symbols,
                                         flat.begin() + (i + 1) * symbols))
            << "row " << i;
      }
    } else {
      EXPECT_EQ(got, want) << "tier=" << gf::tier_name(tier);
      EXPECT_EQ(verdicts, want_verdicts) << "tier=" << gf::tier_name(tier);
    }
  }
}

TEST(GfKernelParity, StructuredDecodeCrossCheckBanded) {
  run_structured_decode_cross_check<gf::Gf256>(
      coding::GenerationStructure::banded(24, 6), 200, 9);
}

TEST(GfKernelParity, StructuredDecodeCrossCheckOverlapped) {
  run_structured_decode_cross_check<gf::Gf256>(
      coding::GenerationStructure::overlapping(24, 8, 2), 200, 10);
}

TEST(GfKernelParity, StructuredDecodeCrossCheckBandedGf2_16) {
  run_structured_decode_cross_check<gf::Gf2_16>(
      coding::GenerationStructure::banded(12, 4), 100, 11);
}

}  // namespace
}  // namespace ncast
