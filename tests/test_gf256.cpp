// GF(2^8) arithmetic tests: field axioms on sampled elements, exhaustive
// inverse checks, and region-operation equivalence.

#include "gf/gf256.hpp"

#include <gtest/gtest.h>

#include "field_axioms.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using gf::Gf256;

TEST(Gf256, AdditiveGroup) {
  Rng rng(1);
  testing::check_additive_group<Gf256>(testing::sample_elements<Gf256>(8, rng));
}

TEST(Gf256, MultiplicativeGroup) {
  Rng rng(2);
  testing::check_multiplicative_group<Gf256>(testing::sample_elements<Gf256>(8, rng));
}

TEST(Gf256, Pow) {
  Rng rng(3);
  testing::check_pow<Gf256>(testing::sample_elements<Gf256>(16, rng));
}

TEST(Gf256, ExhaustiveInverses) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto inv = Gf256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(Gf256::mul(static_cast<std::uint8_t>(a), inv), 1);
  }
}

TEST(Gf256, ExhaustiveDivMulRoundTrip) {
  Rng rng(4);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.below(256));
    const auto b = static_cast<std::uint8_t>(rng.between(1, 255));
    EXPECT_EQ(Gf256::mul(Gf256::div(a, b), b), a);
  }
}

TEST(Gf256, KnownProducts) {
  // Hand-checked products under polynomial 0x11D.
  EXPECT_EQ(Gf256::mul(2, 2), 4);
  EXPECT_EQ(Gf256::mul(0x80, 2), 0x1D);  // x^8 reduces to 0x11D - 0x100
  EXPECT_EQ(Gf256::mul(3, 3), 5);        // (x+1)^2 = x^2+1
}

TEST(Gf256, GeneratorHasFullOrder) {
  // 2 is primitive for 0x11D: its powers hit all 255 nonzero elements.
  std::vector<bool> seen(256, false);
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]);
    seen[x] = true;
    x = Gf256::mul(x, 2);
  }
  EXPECT_EQ(x, 1);  // order divides 255 and equals it
}

TEST(Gf256, RegionOpsMatchScalar) {
  Rng rng(5);
  for (std::size_t len : {0u, 1u, 3u, 8u, 15u, 64u, 1000u}) {
    testing::check_region_ops<Gf256>(rng, len);
  }
}

TEST(Gf256, RegionMaddSpecialCoefficients) {
  Rng rng(6);
  std::vector<std::uint8_t> dst{1, 2, 3, 4}, src{5, 6, 7, 8};
  auto d0 = dst;
  Gf256::region_madd(d0.data(), src.data(), 0, 4);
  EXPECT_EQ(d0, dst);  // c=0 is a no-op
  auto d1 = dst;
  Gf256::region_madd(d1.data(), src.data(), 1, 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(d1[i], dst[i] ^ src[i]);  // c=1 is XOR
}

TEST(Gf256, SimdAndScalarPathsAgree) {
  // The dispatcher switches to AVX2 above a size threshold; sweep lengths
  // straddling it (and odd tails/alignments) against scalar recomputation.
  Rng rng(7);
  for (std::size_t len : {63u, 64u, 65u, 96u, 127u, 128u, 1000u, 4096u, 4099u}) {
    std::vector<std::uint8_t> dst(len), src(len);
    for (auto& b : dst) b = static_cast<std::uint8_t>(rng.below(256));
    for (auto& b : src) b = static_cast<std::uint8_t>(rng.below(256));
    const auto c = static_cast<std::uint8_t>(rng.between(2, 255));

    auto expected = dst;
    for (std::size_t i = 0; i < len; ++i) {
      expected[i] = Gf256::add(expected[i], Gf256::mul(c, src[i]));
    }
    auto got = dst;
    Gf256::region_madd(got.data(), src.data(), c, len);
    ASSERT_EQ(got, expected) << "madd len " << len;

    auto expected_mul = dst;
    for (auto& b : expected_mul) b = Gf256::mul(c, b);
    auto got_mul = dst;
    Gf256::region_mul(got_mul.data(), c, len);
    ASSERT_EQ(got_mul, expected_mul) << "mul len " << len;

    // Unaligned slices must work identically (loadu/storeu paths).
    if (len > 70) {
      auto base = dst;
      auto base2 = dst;
      Gf256::region_madd(base.data() + 1, src.data() + 3, c, len - 3);
      for (std::size_t i = 0; i < len - 3; ++i) {
        base2[i + 1] = Gf256::add(base2[i + 1], Gf256::mul(c, src[i + 3]));
      }
      ASSERT_EQ(base, base2) << "unaligned madd len " << len;
    }
  }
}

TEST(Gf256, RegionMulSpecialCoefficients) {
  std::vector<std::uint8_t> d{9, 8, 7};
  auto d1 = d;
  Gf256::region_mul(d1.data(), 1, 3);
  EXPECT_EQ(d1, d);
  Gf256::region_mul(d1.data(), 0, 3);
  EXPECT_EQ(d1, (std::vector<std::uint8_t>{0, 0, 0}));
}

}  // namespace
}  // namespace ncast
