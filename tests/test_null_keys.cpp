// Null-key verification tests: valid packets (including recoded ones) always
// pass; corrupted packets are rejected with the advertised probability; the
// broadcast simulator's defended mode contains jamming.

#include "coding/null_keys.hpp"

#include <gtest/gtest.h>

#include "coding/encoder.hpp"
#include "coding/recoder.hpp"
#include "gf/gf256.hpp"
#include "overlay/curtain_server.hpp"
#include "sim/broadcast.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using Gf = gf::Gf256;

std::vector<std::vector<std::uint8_t>> random_source(std::size_t g,
                                                     std::size_t symbols,
                                                     Rng& rng) {
  std::vector<std::vector<std::uint8_t>> src(g, std::vector<std::uint8_t>(symbols));
  for (auto& row : src) {
    for (auto& b : row) b = static_cast<std::uint8_t>(rng.below(256));
  }
  return src;
}

TEST(NullKeys, Validation) {
  Rng rng(1);
  EXPECT_THROW(coding::NullKeySet<Gf>::generate(0, {}, 2, rng),
               std::invalid_argument);
  EXPECT_THROW(coding::NullKeySet<Gf>::generate(0, {{}}, 2, rng),
               std::invalid_argument);
  EXPECT_THROW(coding::NullKeySet<Gf>::generate(0, {{1, 2}, {3}}, 2, rng),
               std::invalid_argument);
  EXPECT_THROW(coding::NullKeySet<Gf>::generate(0, {{1, 2}}, 0, rng),
               std::invalid_argument);
}

TEST(NullKeys, ValidPacketsAlwaysPass) {
  Rng rng(2);
  const auto source = random_source(8, 16, rng);
  coding::SourceEncoder<Gf> enc(3, source);
  const auto keys = coding::NullKeySet<Gf>::generate(3, source, 4, rng);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(keys.verify(enc.emit(rng)));
  }
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(keys.verify(enc.emit_systematic(i)));
  }
}

TEST(NullKeys, RecodedPacketsStillPass) {
  // The whole point: verification commutes with in-network mixing.
  Rng rng(3);
  const auto source = random_source(6, 12, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  const auto keys = coding::NullKeySet<Gf>::generate(0, source, 4, rng);

  coding::Recoder<Gf> relay1(0, 6, 12), relay2(0, 6, 12);
  for (int i = 0; i < 10; ++i) relay1.absorb(enc.emit(rng));
  for (int i = 0; i < 10; ++i) {
    if (auto p = relay1.emit(rng)) relay2.absorb(*p);
  }
  for (int i = 0; i < 100; ++i) {
    const auto p = relay2.emit(rng);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(keys.verify(*p));
  }
}

TEST(NullKeys, CorruptedPacketsRejected) {
  Rng rng(4);
  const auto source = random_source(8, 16, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  const auto keys = coding::NullKeySet<Gf>::generate(0, source, 4, rng);
  for (int i = 0; i < 200; ++i) {
    auto p = enc.emit(rng);
    // Flip one payload byte.
    p.payload[rng.below(p.payload.size())] ^= static_cast<std::uint8_t>(rng.between(1, 255));
    EXPECT_FALSE(keys.verify(p)) << "trial " << i;
  }
}

TEST(NullKeys, CorruptedCoefficientsRejected) {
  Rng rng(5);
  const auto source = random_source(8, 16, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  const auto keys = coding::NullKeySet<Gf>::generate(0, source, 4, rng);
  for (int i = 0; i < 200; ++i) {
    auto p = enc.emit(rng);
    p.coeffs[rng.below(p.coeffs.size())] ^= static_cast<std::uint8_t>(rng.between(1, 255));
    EXPECT_FALSE(keys.verify(p));
  }
}

TEST(NullKeys, RandomGarbageRejected) {
  Rng rng(6);
  const auto source = random_source(8, 16, rng);
  const auto keys = coding::NullKeySet<Gf>::generate(0, source, 4, rng);
  for (int i = 0; i < 300; ++i) {
    coding::CodedPacket<Gf> p;
    p.generation = 0;
    p.coeffs.resize(8);
    p.payload.resize(16);
    for (auto& c : p.coeffs) c = static_cast<std::uint8_t>(rng.below(256));
    for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.below(256));
    if (p.is_degenerate()) continue;
    EXPECT_FALSE(keys.verify(p));
  }
}

TEST(NullKeys, SingleKeyFalseAcceptRateNear1Over256) {
  // With one key, garbage passes with probability ~1/256.
  Rng rng(7);
  const auto source = random_source(4, 8, rng);
  const auto keys = coding::NullKeySet<Gf>::generate(0, source, 1, rng);
  std::size_t accepted = 0;
  const std::size_t trials = 40000;
  for (std::size_t i = 0; i < trials; ++i) {
    coding::CodedPacket<Gf> p;
    p.generation = 0;
    p.coeffs.resize(4);
    p.payload.resize(8);
    for (auto& c : p.coeffs) c = static_cast<std::uint8_t>(rng.below(256));
    for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.below(256));
    if (keys.verify(p)) ++accepted;
  }
  const double rate = static_cast<double>(accepted) / static_cast<double>(trials);
  EXPECT_NEAR(rate, 1.0 / 256.0, 1.5e-3);
}

TEST(NullKeys, WrongShapeOrGenerationRejected) {
  Rng rng(8);
  const auto source = random_source(4, 8, rng);
  coding::SourceEncoder<Gf> enc(1, source);
  const auto keys = coding::NullKeySet<Gf>::generate(1, source, 2, rng);
  auto p = enc.emit(rng);
  p.generation = 0;
  EXPECT_FALSE(keys.verify(p));
  auto q = enc.emit(rng);
  q.payload.pop_back();
  EXPECT_FALSE(keys.verify(q));
}

TEST(NullKeys, DefendedBroadcastContainsJamming) {
  overlay::CurtainServer server(8, 3, Rng(9));
  for (int i = 0; i < 80; ++i) server.join();
  std::vector<sim::NodeBehavior> behavior(80, sim::NodeBehavior::kHonest);
  behavior[2] = sim::NodeBehavior::kJammer;
  behavior[7] = sim::NodeBehavior::kJammer;

  sim::BroadcastConfig cfg;
  cfg.generation_size = 8;
  cfg.symbols = 8;
  cfg.seed = 10;

  const auto undefended = simulate_broadcast(server.matrix(), cfg, behavior);
  cfg.null_keys = 4;
  const auto defended = simulate_broadcast(server.matrix(), cfg, behavior);

  EXPECT_GT(undefended.corrupted_fraction(), 0.3);
  EXPECT_DOUBLE_EQ(defended.corrupted_fraction(), 0.0);
  // Verification costs nothing in deliverable rate: jam packets are dropped,
  // honest packets flow; decoding stays near-universal.
  EXPECT_GT(defended.decoded_fraction(), 0.95);
}

}  // namespace
}  // namespace ncast
