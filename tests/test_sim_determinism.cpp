// Determinism regression (the seed contract): every simulator run twice with
// the same seed must produce bit-identical reports AND execute exactly the
// same number of engine events. This pins the unified kernel's draw order —
// an accidental extra RNG draw or a reordered event shows up here first.

#include <gtest/gtest.h>

#include "node/protocol_scenario.hpp"
#include "overlay/curtain_server.hpp"
#include "overlay/flow_graph.hpp"
#include "sim/async_broadcast.hpp"
#include "sim/broadcast.hpp"
#include "sim/churn.hpp"
#include "sim/scenario.hpp"

namespace ncast {
namespace {

using namespace sim;

overlay::ThreadMatrix grow_overlay(std::uint32_t k, std::uint32_t d, int n,
                                   std::uint64_t seed) {
  overlay::CurtainServer server(k, d, Rng(seed));
  for (int i = 0; i < n; ++i) server.join();
  return server.matrix();
}

void expect_identical(const ScenarioOutcome& a, const ScenarioOutcome& b) {
  EXPECT_EQ(a.vertex, b.vertex);
  EXPECT_EQ(a.node, b.node);
  EXPECT_EQ(a.max_flow, b.max_flow);
  EXPECT_EQ(a.rank_achieved, b.rank_achieved);
  EXPECT_EQ(a.decoded, b.decoded);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.first_arrival, b.first_arrival);  // bit-identical doubles
  EXPECT_EQ(a.decode_time, b.decode_time);
  EXPECT_EQ(a.third_time, b.third_time);
  EXPECT_EQ(a.two_thirds_time, b.two_thirds_time);
  EXPECT_EQ(a.depth, b.depth);
}

TEST(Determinism, RoundBroadcastReproduces) {
  const auto m = grow_overlay(6, 2, 24, 11);
  BroadcastConfig cfg;
  cfg.generation_size = 8;
  cfg.symbols = 4;
  cfg.seed = 12;
  cfg.loss_p = 0.1;
  std::vector<NodeBehavior> behavior(24, NodeBehavior::kHonest);
  behavior[5] = NodeBehavior::kEntropyAttack;

  const auto a = simulate_broadcast(m, cfg, behavior);
  const auto b = simulate_broadcast(m, cfg, behavior);
  EXPECT_EQ(a.rounds, b.rounds);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].node, b.outcomes[i].node);
    EXPECT_EQ(a.outcomes[i].rank_achieved, b.outcomes[i].rank_achieved);
    EXPECT_EQ(a.outcomes[i].decode_round, b.outcomes[i].decode_round);
    EXPECT_EQ(a.outcomes[i].decoded, b.outcomes[i].decoded);
    EXPECT_EQ(a.outcomes[i].corrupted, b.outcomes[i].corrupted);
  }
}

TEST(Determinism, AsyncBroadcastReproduces) {
  const auto m = grow_overlay(6, 2, 24, 13);
  const auto fg = overlay::build_flow_graph(m);
  AsyncConfig cfg;
  cfg.generation_size = 8;
  cfg.symbols = 4;
  cfg.seed = 14;

  const auto a =
      simulate_async_broadcast(fg.graph, overlay::FlowGraph::kServerVertex, cfg);
  const auto b =
      simulate_async_broadcast(fg.graph, overlay::FlowGraph::kServerVertex, cfg);
  EXPECT_EQ(a.horizon, b.horizon);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].vertex, b.outcomes[i].vertex);
    EXPECT_EQ(a.outcomes[i].rank_achieved, b.outcomes[i].rank_achieved);
    EXPECT_EQ(a.outcomes[i].decode_time, b.outcomes[i].decode_time);
    EXPECT_EQ(a.outcomes[i].first_arrival, b.outcomes[i].first_arrival);
    EXPECT_EQ(a.outcomes[i].third_time, b.outcomes[i].third_time);
    EXPECT_EQ(a.outcomes[i].two_thirds_time, b.outcomes[i].two_thirds_time);
  }
}

TEST(Determinism, ComposedScenarioReproducesWithIdenticalEventCounts) {
  const auto m = grow_overlay(8, 3, 30, 15);

  ScenarioSpec spec;
  spec.generation_size = 8;
  spec.symbols = 4;
  spec.seed = 16;
  spec.horizon = 120.0;
  spec.link.latency = LatencySpec::uniform(0.2, 1.2);
  spec.link.loss = LossSpec::gilbert_elliott(0.05, 0.45);
  spec.link.bandwidth_cap = 4.0;
  const auto order = m.nodes_in_order();
  spec.faults.crash_at(10.0, order[4]).repair_at(40.0, order[4]);
  spec.faults.behavior_at(20.0, order[9], NodeBehavior::kEntropyAttack);
  std::vector<NodeBehavior> behavior(30, NodeBehavior::kHonest);
  behavior[order[2]] = NodeBehavior::kJammer;

  const auto a = run_scenario(m, spec, behavior);
  const auto b = run_scenario(m, spec, behavior);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.packets_innovative, b.packets_innovative);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    expect_identical(a.outcomes[i], b.outcomes[i]);
  }
}

TEST(Determinism, ChurnReproducesWithIdenticalEventCounts) {
  ChurnConfig cfg;
  cfg.horizon = 40.0;
  cfg.arrival_rate = 5.0;
  cfg.mean_lifetime = 20.0;

  const auto a = run_churn(6, 2, overlay::InsertPolicy::kRandomPosition, cfg, 17);
  const auto b = run_churn(6, 2, overlay::InsertPolicy::kRandomPosition, cfg, 17);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.graceful_leaves, b.graceful_leaves);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.final_population, b.final_population);
  EXPECT_EQ(a.final_failed_tagged, b.final_failed_tagged);
  EXPECT_EQ(a.peak_population, b.peak_population);
}

TEST(Determinism, ProtocolScenarioReproducesWithIdenticalEventCounts) {
  node::ProtocolScenarioSpec spec;
  spec.k = 6;
  spec.default_degree = 2;
  spec.generations = 2;
  spec.generation_size = 8;
  spec.symbols = 8;
  spec.silence_timeout = 8;
  spec.seed = 19;
  spec.transport.latency = LatencySpec::uniform(0.5, 1.5);
  spec.transport.control_loss = LossSpec::bernoulli(0.15);
  spec.transport.data_loss = LossSpec::gilbert_elliott(0.05, 0.45);
  spec.faults.join_burst(1.0, 8, 1.0);
  spec.faults.crash_join_at(30.0, 1);
  spec.faults.leave_join_at(35.0, 4);

  const auto a = node::run_scenario(spec);
  const auto b = node::run_scenario(spec);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.data_messages, b.data_messages);
  EXPECT_EQ(a.control_dropped, b.control_dropped);
  EXPECT_EQ(a.control_bytes, b.control_bytes);
  EXPECT_EQ(a.max_in_flight, b.max_in_flight);
  EXPECT_EQ(a.repairs_done, b.repairs_done);
  EXPECT_EQ(a.last_repair_time, b.last_repair_time);  // bit-identical doubles
  EXPECT_EQ(a.matrix.nodes_in_order(), b.matrix.nodes_in_order());
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].address, b.outcomes[i].address);
    EXPECT_EQ(a.outcomes[i].joined, b.outcomes[i].joined);
    EXPECT_EQ(a.outcomes[i].crashed, b.outcomes[i].crashed);
    EXPECT_EQ(a.outcomes[i].departed, b.outcomes[i].departed);
    EXPECT_EQ(a.outcomes[i].decoded, b.outcomes[i].decoded);
    EXPECT_EQ(a.outcomes[i].join_latency, b.outcomes[i].join_latency);
    EXPECT_EQ(a.outcomes[i].decode_time, b.outcomes[i].decode_time);
    EXPECT_EQ(a.outcomes[i].join_retries, b.outcomes[i].join_retries);
    EXPECT_EQ(a.outcomes[i].complaints, b.outcomes[i].complaints);
  }
}

}  // namespace
}  // namespace ncast
