// Unified scenario-layer tests: link models (latency, Bernoulli and
// Gilbert-Elliott loss, bandwidth caps, partitions), fault plans, and the
// composed scenario runner on both the curtain and the random-graph overlay —
// including the acceptance check that decoded_fraction tracks the max-flow
// bound when loss, latency spread, scheduled churn, and attackers are all
// active at once.

#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/maxflow.hpp"
#include "overlay/curtain_server.hpp"
#include "overlay/flow_graph.hpp"
#include "overlay/random_graph.hpp"
#include "sim/async_broadcast.hpp"
#include "sim/broadcast.hpp"
#include "sim/churn.hpp"

namespace ncast {
namespace {

using namespace sim;
using overlay::CurtainServer;
using overlay::NodeId;

overlay::ThreadMatrix grow_overlay(std::uint32_t k, std::uint32_t d, int n,
                                   std::uint64_t seed) {
  CurtainServer server(k, d, Rng(seed));
  for (int i = 0; i < n; ++i) server.join();
  return server.matrix();
}

// ---------------------------------------------------------------- LinkModel

TEST(LatencySpec, KindsSampleWithinTheirSupport) {
  Rng rng(7);
  const auto fixed = LatencySpec::fixed_delay(0.5);
  EXPECT_DOUBLE_EQ(fixed.sample(rng), 0.5);
  EXPECT_DOUBLE_EQ(fixed.upper_bound(), 0.5);

  const auto uni = LatencySpec::uniform(0.2, 1.8);
  for (int i = 0; i < 100; ++i) {
    const double s = uni.sample(rng);
    EXPECT_GE(s, 0.2);
    EXPECT_LE(s, 1.8);
  }
  EXPECT_DOUBLE_EQ(uni.upper_bound(), 1.8);

  const auto exp = LatencySpec::shifted_exponential(0.1, 0.5);
  for (int i = 0; i < 100; ++i) EXPECT_GE(exp.sample(rng), 0.1);
  EXPECT_DOUBLE_EQ(exp.upper_bound(), 0.1 + 4.0 * 0.4);
}

TEST(LossSpec, MeanLossMatchesStationaryDistribution) {
  EXPECT_DOUBLE_EQ(LossSpec::none().mean_loss(), 0.0);
  EXPECT_DOUBLE_EQ(LossSpec::bernoulli(0.07).mean_loss(), 0.07);
  // pi_bad = 0.1/(0.1+0.3) = 0.25; loss = 0.25 * 1.0.
  EXPECT_DOUBLE_EQ(LossSpec::gilbert_elliott(0.1, 0.3).mean_loss(), 0.25);
  // Degenerate chain (never transitions) falls back to the good-state rate.
  EXPECT_DOUBLE_EQ(LossSpec::gilbert_elliott(0.0, 0.0, 0.02, 1.0).mean_loss(), 0.02);
}

LinkModel single_link_model(const LinkModelSpec& spec, Rng& rng,
                            double period = 1.0) {
  const std::vector<LinkModel::LinkEnd> links{{0, 1}};
  return LinkModel(spec, links, 2, 0, period, /*random_phases=*/false, rng);
}

TEST(LinkModel, GilbertElliottLossIsBurstyAtTheConfiguredRate) {
  LinkModelSpec spec;
  spec.loss = LossSpec::gilbert_elliott(0.05, 0.45);  // mean loss 0.1
  Rng rng(11);
  LinkModel model = single_link_model(spec, rng);

  const int n = 200000;
  int lost = 0;
  int loss_runs = 0;  // bursts: a loss whose predecessor survived
  bool prev_lost = false;
  for (int i = 0; i < n; ++i) {
    const bool ok = model.survives(0, static_cast<double>(i), rng);
    if (!ok) {
      ++lost;
      if (!prev_lost) ++loss_runs;
    }
    prev_lost = !ok;
  }
  const double rate = static_cast<double>(lost) / n;
  EXPECT_NEAR(rate, spec.loss.mean_loss(), 0.02);
  // Burstiness: mean run length 1/p_exit ~ 2.2, so far fewer runs than
  // losses — a Bernoulli process at the same rate has run length ~ 1.1.
  const double mean_run = static_cast<double>(lost) / loss_runs;
  EXPECT_GT(mean_run, 1.6);
}

TEST(LinkModel, BernoulliLossMatchesRate) {
  LinkModelSpec spec;
  spec.loss = LossSpec::bernoulli(0.2);
  Rng rng(13);
  LinkModel model = single_link_model(spec, rng);
  int lost = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (!model.survives(0, static_cast<double>(i), rng)) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.2, 0.02);
}

TEST(LinkModel, BandwidthCapEnforcesMinimumSpacing) {
  LinkModelSpec spec;
  spec.bandwidth_cap = 2.0;  // >= 0.5 between sends
  Rng rng(17);
  LinkModel model = single_link_model(spec, rng);
  EXPECT_TRUE(model.allow_send(0, 0.0));
  EXPECT_FALSE(model.allow_send(0, 0.3));
  EXPECT_TRUE(model.allow_send(0, 0.5));
  EXPECT_FALSE(model.allow_send(0, 0.99));
  EXPECT_TRUE(model.allow_send(0, 1.0));

  LinkModelSpec uncapped;
  Rng rng2(17);
  LinkModel free_model = single_link_model(uncapped, rng2);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(free_model.allow_send(0, 0.0));
}

TEST(LinkModel, PartitionDropsCrossSideDeliveriesDuringWindow) {
  LinkModelSpec spec;
  spec.partition = PartitionSpec::window(2.0, 4.0, 1.0);  // everyone on side B
  Rng rng(19);
  LinkModel model = single_link_model(spec, rng);
  // Link 0->1 crosses sides (source 0 stays on side A).
  EXPECT_FALSE(model.partitioned(0, 1.9));
  EXPECT_TRUE(model.partitioned(0, 2.0));
  EXPECT_TRUE(model.partitioned(0, 3.9));
  EXPECT_FALSE(model.partitioned(0, 4.0));
  EXPECT_FALSE(model.survives(0, 3.0, rng));
  EXPECT_TRUE(model.survives(0, 5.0, rng));
}

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, SortedIsStableByTime) {
  FaultPlan plan;
  plan.crash_at(5.0, 3).leave_at(1.0, 4).repair_at(5.0, 3).behavior_at(
      0.5, 7, NodeBehavior::kJammer);
  const auto sorted = plan.sorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].kind, FaultKind::kBehavior);
  EXPECT_EQ(sorted[1].kind, FaultKind::kLeave);
  // Equal times keep insertion order: crash before its repair.
  EXPECT_EQ(sorted[2].kind, FaultKind::kCrash);
  EXPECT_EQ(sorted[3].kind, FaultKind::kRepair);
}

TEST(FaultPlan, RejectsNegativeTimesAndBadJoinRefs) {
  FaultPlan plan;
  EXPECT_THROW(plan.crash_at(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(plan.leave_join_at(1.0, 0), std::invalid_argument);
  const auto ref = plan.join_at(0.0);
  EXPECT_NO_THROW(plan.leave_join_at(1.0, ref));
}

TEST(FaultPlan, MergeRebasesJoinRefs) {
  FaultPlan a;
  const auto ra = a.join_at(1.0);
  a.leave_join_at(2.0, ra);

  FaultPlan b;
  const auto rb = b.join_at(3.0);
  b.crash_join_at(4.0, rb);

  a.merge(b);
  EXPECT_EQ(a.join_count(), 2u);
  const auto events = a.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[2].join_ref, 1u);  // b's join re-based past a's
  EXPECT_EQ(events[3].join_ref, 1u);
}

TEST(FaultPlan, PoissonChurnIsDeterministicPerRng) {
  ChurnProcessSpec spec;
  spec.horizon = 50.0;
  const auto a = FaultPlan::poisson_churn(spec, Rng(99));
  const auto b = FaultPlan::poisson_churn(spec, Rng(99));
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].join_ref, b.events()[i].join_ref);
  }
  // Every join gets exactly one departure (leave, or crash + repair).
  std::size_t joins = 0, leaves = 0, crashes = 0, repairs = 0;
  for (const auto& e : a.events()) {
    joins += e.kind == FaultKind::kJoin;
    leaves += e.kind == FaultKind::kLeave;
    crashes += e.kind == FaultKind::kCrash;
    repairs += e.kind == FaultKind::kRepair;
  }
  EXPECT_EQ(joins, a.join_count());
  EXPECT_EQ(joins, leaves + crashes);
  EXPECT_EQ(crashes, repairs);
}

// ------------------------------------------------------------- rate() guard

TEST(RateGuard, MissingCrossingsYieldZeroRate) {
  AsyncOutcome o;
  o.rank_achieved = 16;
  o.third_time = -1.0;  // never crossed g/3
  o.two_thirds_time = 9.0;
  EXPECT_DOUBLE_EQ(o.rate(), 0.0);

  o.third_time = 5.0;
  o.two_thirds_time = -1.0;  // never crossed 2g/3
  EXPECT_DOUBLE_EQ(o.rate(), 0.0);

  o.third_time = -1.0;
  o.two_thirds_time = -1.0;
  EXPECT_DOUBLE_EQ(o.rate(), 0.0);

  o.third_time = 5.0;
  o.two_thirds_time = 5.0;  // degenerate: crossings coincide
  EXPECT_DOUBLE_EQ(o.rate(), 0.0);

  o.third_time = 2.0;
  o.two_thirds_time = 4.0;  // ranks 6 -> 11 over 2 time units
  EXPECT_DOUBLE_EQ(o.rate(), 2.5);

  ScenarioOutcome s;
  s.rank_achieved = 16;
  s.third_time = -1.0;
  s.two_thirds_time = 9.0;
  EXPECT_DOUBLE_EQ(s.rate(), 0.0);
  EXPECT_DOUBLE_EQ(steady_state_rate(16, 2.0, 4.0), 2.5);
}

// -------------------------------------------------------- scenario running

TEST(Scenario, CrashSilencesDownstreamUntilRepair) {
  // A chain server(0) -> relay(1) -> leaf(2). Crashing the relay freezes the
  // leaf's rank; a repair lets it finish decoding.
  graph::Digraph chain(3);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);

  ScenarioSpec spec;
  spec.generation_size = 16;
  spec.symbols = 4;
  spec.seed = 5;
  spec.link.latency = LatencySpec::fixed_delay(0.25);
  spec.horizon = 80.0;
  spec.faults.crash_at(5.5, 1);

  const auto crashed = run_scenario(chain, 0, spec);
  ASSERT_EQ(crashed.outcomes.size(), 2u);
  const auto& leaf = crashed.outcomes[1];
  EXPECT_EQ(leaf.vertex, 2u);
  EXPECT_FALSE(leaf.decoded);
  EXPECT_LE(leaf.rank_achieved, 7u);  // ~5 sends got through before the crash
  // End-state capacity: the crashed relay cuts the leaf off entirely.
  EXPECT_EQ(leaf.max_flow, 0);
  // The server keeps feeding the dead relay; those deliveries count as lost.
  EXPECT_GT(crashed.packets_lost, 40u);

  ScenarioSpec repaired_spec = spec;
  repaired_spec.faults = FaultPlan{};
  repaired_spec.faults.crash_at(5.5, 1).repair_at(30.0, 1);
  const auto repaired = run_scenario(chain, 0, repaired_spec);
  EXPECT_TRUE(repaired.outcomes[1].decoded);
  EXPECT_EQ(repaired.outcomes[1].max_flow, 1);
}

TEST(Scenario, LeaveIsPermanentDespiteLaterRepair) {
  graph::Digraph chain(3);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);

  ScenarioSpec spec;
  spec.generation_size = 8;
  spec.symbols = 4;
  spec.seed = 6;
  spec.link.latency = LatencySpec::fixed_delay(0.25);
  spec.horizon = 60.0;
  spec.faults.leave_at(4.5, 1).repair_at(10.0, 1);

  const auto report = run_scenario(chain, 0, spec);
  EXPECT_FALSE(report.outcomes[1].decoded);
}

TEST(Scenario, BehaviorSwitchTurnsAttackOn) {
  // The relay turns into an entropy attacker mid-run: the leaf's rank stops
  // growing past the packets it received before the switch (replayed copies
  // carry no new information).
  graph::Digraph chain(3);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);

  ScenarioSpec spec;
  spec.generation_size = 16;
  spec.symbols = 4;
  spec.seed = 7;
  spec.link.latency = LatencySpec::fixed_delay(0.25);
  spec.horizon = 80.0;
  spec.faults.behavior_at(6.5, 1, NodeBehavior::kEntropyAttack);

  const auto report = run_scenario(chain, 0, spec);
  const auto& leaf = report.outcomes[1];
  EXPECT_FALSE(leaf.decoded);
  EXPECT_LE(leaf.rank_achieved, 8u);
  EXPECT_GE(leaf.rank_achieved, 1u);
  // The attacker keeps the link busy: packets still flow, rank does not.
  EXPECT_GT(report.packets_sent, 100u);
}

TEST(Scenario, BandwidthCapThrottlesSends) {
  graph::Digraph pair(2);
  pair.add_edge(0, 1);

  ScenarioSpec spec;
  spec.generation_size = 8;
  spec.symbols = 4;
  spec.seed = 8;
  spec.link.latency = LatencySpec::fixed_delay(0.25);
  spec.horizon = 40.0;

  const auto uncapped = run_scenario(pair, 0, spec);

  ScenarioSpec capped = spec;
  capped.link.bandwidth_cap = 0.5;  // one packet per two periods
  const auto throttled = run_scenario(pair, 0, capped);

  EXPECT_GT(uncapped.packets_sent, 35u);
  EXPECT_LT(throttled.packets_sent, uncapped.packets_sent / 2 + 4);
  EXPECT_GT(throttled.packets_sent, 15u);
  EXPECT_TRUE(throttled.outcomes[0].decoded);  // slower, but still complete
}

TEST(Scenario, PartitionWindowDropsPacketsThenHeals) {
  graph::Digraph pair(2);
  pair.add_edge(0, 1);

  ScenarioSpec spec;
  spec.generation_size = 8;
  spec.symbols = 4;
  spec.seed = 9;
  spec.link.latency = LatencySpec::fixed_delay(0.25);
  spec.horizon = 60.0;
  spec.link.partition = PartitionSpec::window(3.0, 10.0, 1.0);

  const auto report = run_scenario(pair, 0, spec);
  EXPECT_GT(report.packets_lost, 4u);   // ~7 periods of cross-side drops
  EXPECT_TRUE(report.outcomes[0].decoded);  // the window heals
}

TEST(Scenario, RoundSyncMatchesBroadcastWrapperContract) {
  // The wrapper and a hand-built round_sync spec must agree: same rounds,
  // same per-node outcomes, decode_round == floor(decode_time).
  const auto m = grow_overlay(6, 2, 20, 21);
  BroadcastConfig cfg;
  cfg.generation_size = 8;
  cfg.symbols = 4;
  cfg.seed = 22;
  const auto wrapped = simulate_broadcast(m, cfg);

  ScenarioSpec spec;
  spec.generation_size = 8;
  spec.symbols = 4;
  spec.seed = 22;
  spec.round_sync = true;
  spec.link.latency = LatencySpec::fixed_delay(0.5);
  const auto direct = run_scenario(m, spec);

  ASSERT_EQ(direct.outcomes.size(), wrapped.outcomes.size());
  EXPECT_EQ(direct.rounds, wrapped.rounds);
  for (std::size_t i = 0; i < direct.outcomes.size(); ++i) {
    const auto& s = direct.outcomes[i];
    const auto& o = wrapped.outcomes[i];
    EXPECT_EQ(s.node, o.node);
    EXPECT_EQ(s.max_flow, o.max_flow);
    EXPECT_EQ(s.rank_achieved, o.rank_achieved);
    EXPECT_EQ(s.decoded, o.decoded);
    EXPECT_EQ(s.depth, o.depth);
    if (s.decoded) {
      EXPECT_EQ(static_cast<std::size_t>(s.decode_time), o.decode_round);
    }
  }
}

// ------------------------------------------- composed acceptance scenarios

// Builds the composed adversity spec: bursty loss + heterogeneous latency +
// scheduled crashes + entropy attackers, all active in one run.
ScenarioSpec composed_spec(std::uint64_t seed, const std::vector<NodeId>& crashed) {
  ScenarioSpec spec;
  spec.generation_size = 8;
  spec.symbols = 4;
  spec.seed = seed;
  spec.link.latency = LatencySpec::uniform(0.2, 1.2);
  spec.link.loss = LossSpec::gilbert_elliott(0.05, 0.45);  // ~10% bursty loss
  spec.horizon = 400.0;
  for (const NodeId n : crashed) spec.faults.crash_at(5.0, n);
  return spec;
}

TEST(Scenario, ComposedAdversityTracksMaxflowBoundOnCurtain) {
  const std::uint32_t k = 8, d = 3;
  const int n = 40;
  const auto m = grow_overlay(k, d, n, 31);
  const auto order = m.nodes_in_order();

  const std::vector<NodeId> attackers{order[6], order[13]};
  const std::vector<NodeId> crashed{order[3], order[17], order[25]};
  std::vector<NodeBehavior> behavior(n, NodeBehavior::kHonest);
  for (const NodeId a : attackers) behavior[a] = NodeBehavior::kEntropyAttack;

  const auto report = run_scenario(m, composed_spec(32, crashed), behavior);
  ASSERT_EQ(report.outcomes.size(), static_cast<std::size_t>(n));

  // The bound: in a capacity view where attackers and crashed nodes are
  // failed, any node with positive min-cut has an honest, eventually-live
  // path budget and must decode given the generous horizon.
  overlay::ThreadMatrix honest_view = m;
  for (const NodeId a : attackers) honest_view.mark_failed(a);
  for (const NodeId c : crashed) honest_view.mark_failed(c);
  const auto honest_fg = build_flow_graph(honest_view);

  // Tolerance: nodes outside the guaranteed set (attackers, crashed nodes,
  // and honest nodes with zero honest cut) may still decode — attacks hurt
  // downstream nodes, not the attacker's own intake, and crashes at t = 5
  // leave a window to finish a small generation.
  std::size_t expected = 0;
  std::size_t unguaranteed = 0;
  for (const auto& o : report.outcomes) {
    const bool is_attacker =
        std::find(attackers.begin(), attackers.end(), o.node) != attackers.end();
    const bool is_crashed =
        std::find(crashed.begin(), crashed.end(), o.node) != crashed.end();
    if (is_attacker || is_crashed) {  // own cut is zero in the honest view
      ++unguaranteed;
      continue;
    }
    const auto honest_cut = node_connectivity(honest_fg, o.node);
    if (honest_cut > 0) {
      ++expected;
      EXPECT_TRUE(o.decoded) << "node " << o.node << " honest min-cut "
                             << honest_cut << " but failed to decode";
      EXPECT_FALSE(o.corrupted);
    } else {
      ++unguaranteed;
    }
  }
  // The bound must be non-trivial for the test to mean anything.
  EXPECT_GE(expected, report.outcomes.size() - 10);
  const auto n_out = static_cast<double>(report.outcomes.size());
  const double expected_frac = static_cast<double>(expected) / n_out;
  const double tolerance = static_cast<double>(unguaranteed) / n_out;
  EXPECT_GE(report.decoded_fraction(), expected_frac);
  EXPECT_LE(report.decoded_fraction(), expected_frac + tolerance);
}

TEST(Scenario, ComposedAdversityTracksMaxflowBoundOnRandomGraph) {
  overlay::RandomGraphOverlay overlay(3, 3, Rng(41));
  for (int i = 0; i < 30; ++i) overlay.join();
  const auto& g = overlay.graph();
  const auto source = overlay::RandomGraphOverlay::kServer;

  const std::vector<graph::Vertex> attackers{5, 12};
  const std::vector<NodeId> crashed{8, 20};
  std::vector<NodeBehavior> behavior(g.vertex_count(), NodeBehavior::kHonest);
  for (const auto a : attackers) behavior[a] = NodeBehavior::kEntropyAttack;

  const auto report = run_scenario(g, source, composed_spec(42, crashed), behavior);
  ASSERT_EQ(report.outcomes.size(), g.vertex_count() - 1);

  // Honest capacity graph: attacker and crashed vertices contribute nothing.
  graph::Digraph honest = g;
  auto is_knocked_out = [&](graph::Vertex v) {
    return std::find(attackers.begin(), attackers.end(), v) != attackers.end() ||
           std::find(crashed.begin(), crashed.end(), v) != crashed.end();
  };
  for (graph::EdgeId id = 0; id < honest.edge_count(); ++id) {
    const auto& e = honest.edge(id);
    if (e.alive && (is_knocked_out(e.from) || is_knocked_out(e.to))) {
      honest.remove_edge(id);
    }
  }

  std::size_t expected = 0;
  std::size_t unguaranteed = 0;
  for (const auto& o : report.outcomes) {
    const auto honest_cut =
        is_knocked_out(o.vertex)
            ? 0
            : graph::unit_max_flow(honest, source, o.vertex);
    if (honest_cut > 0) {
      ++expected;
      EXPECT_TRUE(o.decoded) << "vertex " << o.vertex << " honest min-cut "
                             << honest_cut << " but failed to decode";
    } else {
      ++unguaranteed;
    }
  }
  EXPECT_GE(expected, report.outcomes.size() - 8);
  const auto n_out = static_cast<double>(report.outcomes.size());
  const double expected_frac = static_cast<double>(expected) / n_out;
  EXPECT_GE(report.decoded_fraction(), expected_frac);
  EXPECT_LE(report.decoded_fraction(),
            expected_frac + static_cast<double>(unguaranteed) / n_out);
}

// ------------------------------------------------------ fault-plan executor

TEST(RunFaultPlan, ExecutesMembershipEventsAgainstServer) {
  CurtainServer server(6, 2, Rng(51));
  FaultPlan plan;
  const auto a = plan.join_at(1.0);
  const auto b = plan.join_at(2.0);
  plan.join_at(3.0);
  plan.crash_join_at(5.0, a);
  plan.repair_join_at(6.0, a);
  plan.leave_join_at(7.0, b);

  const auto report = run_fault_plan(server, plan, 10.0);
  EXPECT_EQ(report.joins, 3u);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_EQ(report.repairs, 1u);
  EXPECT_EQ(report.graceful_leaves, 1u);
  // Three joined; the repair deleted the crashed node's row (Section 3) and
  // one node left gracefully, so only the third joiner remains.
  EXPECT_EQ(report.final_population, 1u);
  EXPECT_EQ(report.final_failed_tagged, 0u);
}

TEST(RunFaultPlan, SkippedJoinDissolvesDependentEvents) {
  CurtainServer server(4, 2, Rng(52));
  FaultPlan plan;
  const auto a = plan.join_at(1.0);
  const auto b = plan.join_at(2.0);  // blocked by max_population = 1
  plan.crash_join_at(3.0, b);        // must dissolve, not hit some other node
  plan.repair_join_at(4.0, b);
  plan.leave_join_at(5.0, a);

  const auto report = run_fault_plan(server, plan, 10.0, /*max_population=*/1);
  EXPECT_EQ(report.joins, 1u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.repairs, 0u);
  EXPECT_EQ(report.graceful_leaves, 1u);
  EXPECT_EQ(report.final_population, 0u);
}

}  // namespace
}  // namespace ncast
