// Dinic max-flow tests: textbook instances, unit-capacity overlay patterns,
// tap-set flows, and min-cut extraction.

#include "graph/maxflow.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ncast {
namespace {

using graph::Digraph;
using graph::MaxFlow;

TEST(MaxFlow, SingleEdge) {
  MaxFlow mf(2);
  mf.add_edge(0, 1, 7);
  EXPECT_EQ(mf.compute(0, 1), 7);
}

TEST(MaxFlow, SeriesBottleneck) {
  MaxFlow mf(3);
  mf.add_edge(0, 1, 10);
  mf.add_edge(1, 2, 4);
  EXPECT_EQ(mf.compute(0, 2), 4);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 3);
  mf.add_edge(1, 3, 3);
  mf.add_edge(0, 2, 5);
  mf.add_edge(2, 3, 5);
  EXPECT_EQ(mf.compute(0, 3), 8);
}

TEST(MaxFlow, ClassicCLRSInstance) {
  // CLRS figure 26.6 instance; known max flow 23.
  MaxFlow mf(6);
  mf.add_edge(0, 1, 16);
  mf.add_edge(0, 2, 13);
  mf.add_edge(1, 2, 10);
  mf.add_edge(2, 1, 4);
  mf.add_edge(1, 3, 12);
  mf.add_edge(3, 2, 9);
  mf.add_edge(2, 4, 14);
  mf.add_edge(4, 3, 7);
  mf.add_edge(3, 5, 20);
  mf.add_edge(4, 5, 4);
  EXPECT_EQ(mf.compute(0, 5), 23);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow mf(3);
  mf.add_edge(0, 1, 5);
  EXPECT_EQ(mf.compute(0, 2), 0);
}

TEST(MaxFlow, Validation) {
  MaxFlow mf(2);
  EXPECT_THROW(mf.add_edge(0, 5, 1), std::out_of_range);
  EXPECT_THROW(mf.add_edge(0, 1, -1), std::invalid_argument);
  EXPECT_THROW(mf.compute(0, 0), std::invalid_argument);
  mf.add_edge(0, 1, 1);
  mf.compute(0, 1);
  EXPECT_THROW(mf.compute(0, 1), std::logic_error);
  EXPECT_THROW(mf.add_edge(0, 1, 1), std::logic_error);
}

TEST(MaxFlow, FlowOnEdges) {
  MaxFlow mf(3);
  const auto a = mf.add_edge(0, 1, 10);
  const auto b = mf.add_edge(1, 2, 4);
  EXPECT_EQ(mf.compute(0, 2), 4);
  EXPECT_EQ(mf.flow_on(a), 4);
  EXPECT_EQ(mf.flow_on(b), 4);
}

TEST(MaxFlow, MinCutSeparatesSourceFromSink) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 100);
  mf.add_edge(1, 2, 1);  // the cut
  mf.add_edge(2, 3, 100);
  mf.compute(0, 3);
  const auto side = mf.min_cut_source_side();
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(UnitMaxFlow, CountsEdgeDisjointPaths) {
  Digraph g(4);
  // Two edge-disjoint paths 0->3, plus one dead-end.
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 1);  // parallel edge: third unit into 1 but only one 1->3
  EXPECT_EQ(unit_max_flow(g, 0, 3), 2);
}

TEST(UnitMaxFlow, IgnoresDeadEdges) {
  Digraph g(2);
  const auto e = g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(unit_max_flow(g, 0, 1), 2);
  g.remove_edge(e);
  EXPECT_EQ(unit_max_flow(g, 0, 1), 1);
}

TEST(UnitMaxFlowToSet, SumsOverTaps) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  // Taps at 1 and 2: flow limited by tap capacity (1 each), not edges.
  EXPECT_EQ(graph::unit_max_flow_to_set(g, 0, {1, 2}), 2);
  // Duplicate taps add sink capacity.
  EXPECT_EQ(graph::unit_max_flow_to_set(g, 0, {1, 1, 2}), 3);
  // Tap on the source itself contributes a free unit.
  EXPECT_EQ(graph::unit_max_flow_to_set(g, 0, {0, 1}), 2);
}

TEST(MinConnectivity, CompleteDigraph) {
  Digraph g(4);
  for (graph::Vertex u = 0; u < 4; ++u) {
    for (graph::Vertex v = 0; v < 4; ++v) {
      if (u != v) g.add_edge(u, v);
    }
  }
  EXPECT_EQ(graph::min_connectivity(g, 0), 3);
}

TEST(MinConnectivity, WeakestVertexWins) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 2);  // vertex 2 has connectivity 1
  EXPECT_EQ(graph::min_connectivity(g, 0), 1);
}

TEST(MaxFlow, RandomGraphFlowMatchesBruteForceCut) {
  // Property check on small random DAGs: max-flow <= capacity of every
  // brute-force enumerated cut, with equality for some cut.
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 6;
    Digraph g(n);
    for (graph::Vertex u = 0; u < n; ++u) {
      for (graph::Vertex v = u + 1; v < n; ++v) {
        if (rng.chance(0.5)) g.add_edge(u, v);
      }
    }
    const auto flow = unit_max_flow(g, 0, static_cast<graph::Vertex>(n - 1));

    std::int64_t best_cut = INT64_MAX;
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      if (!(mask & 1u) || (mask & (1u << (n - 1)))) continue;  // s in, t out
      std::int64_t cut = 0;
      for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
        const auto& edge = g.edge(e);
        if ((mask & (1u << edge.from)) && !(mask & (1u << edge.to))) ++cut;
      }
      best_cut = std::min(best_cut, cut);
    }
    EXPECT_EQ(flow, best_cut) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ncast
