// Gossip-based decentralized thread discovery tests.

#include "overlay/gossip.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ncast {
namespace {

using namespace overlay;

TEST(Gossip, Validation) {
  ThreadMatrix m(4);
  Rng rng(1);
  GossipConfig cfg;
  EXPECT_THROW(gossip_discover(m, 0, cfg, rng), std::invalid_argument);
  EXPECT_THROW(gossip_discover(m, 5, cfg, rng), std::invalid_argument);
}

TEST(Gossip, EmptyOverlayFindsServerThreads) {
  ThreadMatrix m(6);
  Rng rng(2);
  GossipConfig cfg;
  const auto cols = gossip_discover(m, 3, cfg, rng);
  ASSERT_EQ(cols.size(), 3u);
  std::set<ColumnId> distinct(cols.begin(), cols.end());
  EXPECT_EQ(distinct.size(), 3u);
  for (auto c : cols) EXPECT_LT(c, 6u);
}

TEST(Gossip, ReturnsSortedDistinctColumns) {
  ThreadMatrix m(8);
  Rng rng(3);
  NodeId next = 0;
  for (int i = 0; i < 20; ++i) {
    GossipConfig cfg;
    const auto cols = gossip_discover(m, 3, cfg, rng);
    ASSERT_EQ(cols.size(), 3u);
    for (std::size_t j = 1; j < cols.size(); ++j) EXPECT_LT(cols[j - 1], cols[j]);
    m.append_row(next++, cols);
  }
  EXPECT_TRUE(m.check_invariants());
}

TEST(Gossip, CountsMessages) {
  ThreadMatrix m(6);
  Rng rng(4);
  GossipConfig cfg;
  std::uint64_t messages = 0;
  gossip_discover(m, 2, cfg, rng, &messages);
  EXPECT_GT(messages, 0u);
}

TEST(Gossip, ZeroWalkBudgetFallsBackToTracker) {
  ThreadMatrix m(6);
  m.append_row(0, {0, 1, 2});
  Rng rng(5);
  GossipConfig cfg;
  cfg.max_walks = 0;
  const auto cols = gossip_discover(m, 4, cfg, rng);
  ASSERT_EQ(cols.size(), 4u);
  std::set<ColumnId> distinct(cols.begin(), cols.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(Gossip, AvoidsDeadHangingEndsWhenWalking) {
  // With all ends owned by failed nodes, walks find nothing; fallback still
  // completes the selection.
  ThreadMatrix m(4);
  m.append_row(0, {0, 1, 2, 3});
  m.mark_failed(0);
  Rng rng(6);
  GossipConfig cfg;
  const auto cols = gossip_discover(m, 2, cfg, rng);
  EXPECT_EQ(cols.size(), 2u);
}

TEST(Gossip, DiscoveryDrivesGrowableOverlay) {
  // Build a 100-node overlay purely via gossip; topology must stay valid and
  // every pick must be a legal thread set.
  ThreadMatrix m(10);
  Rng rng(7);
  GossipConfig cfg;
  cfg.walk_length = 4;
  for (NodeId n = 0; n < 100; ++n) {
    const auto cols = gossip_discover(m, 3, cfg, rng);
    m.append_row(n, cols);
  }
  EXPECT_EQ(m.row_count(), 100u);
  EXPECT_TRUE(m.check_invariants());
}

}  // namespace
}  // namespace ncast
