// Protocol-level tests: real ServerNode/ClientNode endpoints exchanging
// hello/good-bye/complaint/repair/data messages over the in-memory fabric.
// This is the paper's Section 3, executed message by message.

#include <gtest/gtest.h>

#include <memory>

#include "coding/encoder.hpp"
#include "coding/null_keys.hpp"
#include "coding/wire.hpp"
#include "node/driver.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using namespace node;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  return bytes;
}

struct Fixture {
  ServerConfig scfg;
  ClientConfig ccfg;
  std::unique_ptr<ServerNode> server;
  std::vector<std::unique_ptr<ClientNode>> clients;
  std::unique_ptr<TickDriver> driver;

  explicit Fixture(std::size_t n_clients, std::uint32_t k = 8,
                   std::uint32_t d = 3, std::size_t g = 8,
                   std::size_t generations = 1) {
    scfg.k = k;
    scfg.default_degree = d;
    scfg.repair_delay = 2;
    scfg.generation_size = g;
    scfg.symbols = 8;
    scfg.seed = 7;
    ccfg.silence_timeout = 6;
    server = std::make_unique<ServerNode>(
        scfg, random_bytes(g * 8 * generations, 99));
    std::vector<ClientNode*> ptrs;
    for (std::size_t i = 0; i < n_clients; ++i) {
      clients.push_back(std::make_unique<ClientNode>(
          static_cast<Address>(i + 1), ccfg));
      ptrs.push_back(clients.back().get());
    }
    driver = std::make_unique<TickDriver>(*server, ptrs);
    for (auto& c : clients) c->join(driver->network());
  }
};

TEST(NodeProtocol, JoinAssignsThreadsAndBuildsMatrix) {
  Fixture f(5);
  f.driver->run(3);
  for (auto& c : f.clients) {
    EXPECT_TRUE(c->joined());
    EXPECT_TRUE(f.server->matrix().contains(c->address()));
    EXPECT_EQ(f.server->matrix().row(c->address()).threads.size(), 3u);
  }
  EXPECT_EQ(f.server->matrix().row_count(), 5u);
}

TEST(NodeProtocol, StreamingDecodesEveryone) {
  Fixture f(20);
  EXPECT_TRUE(f.driver->run_until_decoded(300));
  for (auto& c : f.clients) {
    ASSERT_TRUE(c->decoded());
    EXPECT_EQ(c->data(), f.server->data());
  }
}

TEST(NodeProtocol, GracefulLeaveRewiresStream) {
  Fixture f(12);
  f.driver->run(5);  // everyone joined
  // The 3rd client leaves; everyone else must still decode.
  f.clients[2]->leave(f.driver->network());
  f.driver->run(3);
  EXPECT_FALSE(f.server->matrix().contains(f.clients[2]->address()));

  std::vector<ClientNode*> rest;
  for (std::size_t i = 0; i < f.clients.size(); ++i) {
    if (i != 2) rest.push_back(f.clients[i].get());
  }
  EXPECT_TRUE(f.driver->run_until_decoded(400));
  for (auto* c : rest) EXPECT_TRUE(c->decoded());
}

TEST(NodeProtocol, CrashComplaintRepairRecovers) {
  Fixture f(15, 8, 2, 12);
  f.driver->run(4);

  // Crash an early client (likely to have children).
  ClientNode& victim = *f.clients[1];
  f.driver->crash(victim);

  // The stream must still reach everyone else: children detect silence,
  // complain, the server repairs, parents redirect. Note decoding usually
  // finishes *before* the repair lands (redundancy covers the outage — the
  // containment story), so run past the silence timeout to observe the
  // repair machinery itself.
  EXPECT_TRUE(f.driver->run_until_decoded(600));
  f.driver->run(f.ccfg.silence_timeout * 3 + f.scfg.repair_delay + 4);
  EXPECT_FALSE(f.server->matrix().contains(victim.address()));
  EXPECT_EQ(f.server->matrix().failed_count(), 0u);
  EXPECT_GE(f.server->repairs_done(), 1u);
}

TEST(NodeProtocol, MultipleCrashesAllRepaired) {
  Fixture f(25, 12, 3, 10);
  f.driver->run(4);
  f.driver->crash(*f.clients[0]);
  f.driver->crash(*f.clients[4]);
  f.driver->crash(*f.clients[9]);
  EXPECT_TRUE(f.driver->run_until_decoded(800));
  // Let the complaint -> repair cycle complete for all three victims.
  f.driver->run(f.ccfg.silence_timeout * 4 + f.scfg.repair_delay + 8);
  EXPECT_EQ(f.server->matrix().failed_count(), 0u);
  EXPECT_EQ(f.server->matrix().row_count(), 22u);
  for (auto& c : f.clients) {
    if (c->crashed()) continue;
    EXPECT_TRUE(c->decoded());
    EXPECT_EQ(c->data(), f.server->data());
  }
}

TEST(NodeProtocol, LateJoinersCatchUp) {
  Fixture f(10);
  f.driver->run(40);
  // A new client joins mid-stream.
  auto late = std::make_unique<ClientNode>(static_cast<Address>(100), f.ccfg);
  f.driver->add_client(late.get());
  late->join(f.driver->network());
  f.driver->run(100);
  EXPECT_TRUE(late->decoded());
  EXPECT_EQ(late->data(), f.server->data());
}

TEST(NodeProtocol, ControlTrafficIsTiny) {
  Fixture f(30);
  EXPECT_TRUE(f.driver->run_until_decoded(400));
  const auto& net = f.driver->network();
  // Control is O(d) per membership event (join request + accept + <= d
  // parent attachments), independent of stream length: 30 joins here.
  const auto control_after_joins = net.control_messages();
  EXPECT_LE(control_after_joins, 30u * (2 + 3 + 1));
  // With membership stable, a longer stream adds data but zero control —
  // the message-level version of the server-scalability claim.
  f.driver->run(100);
  EXPECT_EQ(net.control_messages(), control_after_joins);
  EXPECT_GT(net.data_messages(), net.control_messages() * 5);
}

TEST(NodeProtocol, MultiGenerationFileStreams) {
  // A 4-generation content object: the protocol layer must deliver and
  // reassemble the whole file, not just one generation.
  Fixture f(16, 8, 3, 8, /*generations=*/4);
  EXPECT_EQ(f.server->plan().generations, 4u);
  EXPECT_TRUE(f.driver->run_until_decoded(1200));
  for (auto& c : f.clients) {
    ASSERT_TRUE(c->decoded());
    EXPECT_EQ(c->data(), f.server->data());
  }
}

TEST(NodeProtocol, NullKeysDistributedInJoinAccept) {
  ServerConfig scfg;
  scfg.k = 8;
  scfg.default_degree = 2;
  scfg.generation_size = 6;
  scfg.symbols = 8;
  scfg.null_keys = 3;
  ServerNode server(scfg, random_bytes(6 * 8 * 2, 5));

  ClientConfig ccfg;
  std::vector<std::unique_ptr<ClientNode>> clients;
  std::vector<ClientNode*> ptrs;
  for (Address a = 1; a <= 10; ++a) {
    clients.push_back(std::make_unique<ClientNode>(a, ccfg));
    ptrs.push_back(clients.back().get());
  }
  TickDriver driver(server, ptrs);
  for (auto& c : clients) c->join(driver.network());
  driver.run(3);
  for (auto& c : clients) {
    EXPECT_TRUE(c->joined());
    EXPECT_TRUE(c->verification_enabled());
  }
  // Verification must not interfere with honest streaming.
  EXPECT_TRUE(driver.run_until_decoded(400));
  for (auto& c : clients) {
    EXPECT_EQ(c->data(), server.data());
    EXPECT_EQ(c->packets_rejected(), 0u);
  }
}

TEST(NodeProtocol, VerifyingClientsRejectForgedData) {
  ServerConfig scfg;
  scfg.k = 6;
  scfg.default_degree = 2;
  scfg.generation_size = 4;
  scfg.symbols = 8;
  scfg.null_keys = 4;
  ServerNode server(scfg, random_bytes(4 * 8, 6));

  ClientConfig ccfg;
  ClientNode client(1, ccfg);
  TickDriver driver(server, {&client});
  client.join(driver.network());
  driver.run(3);
  ASSERT_TRUE(client.verification_enabled());

  // Forge a well-formed but inconsistent packet and inject it.
  Rng rng(7);
  coding::CodedPacket<gf::Gf256> forged;
  forged.generation = 0;
  forged.coeffs.assign(4, 0);
  forged.coeffs[0] = 1;
  forged.payload.resize(8);
  for (auto& b : forged.payload) b = static_cast<std::uint8_t>(rng.below(256));

  Message evil;
  evil.type = MessageType::kData;
  evil.from = 99;
  evil.to = 1;
  evil.column = 0;
  evil.wire = coding::serialize(forged);
  const auto rejected_before = client.packets_rejected();
  driver.network().send(evil);
  driver.run(1);
  EXPECT_EQ(client.packets_rejected(), rejected_before + 1);

  // The stream still completes correctly around the forgery.
  EXPECT_TRUE(driver.run_until_decoded(200));
  EXPECT_EQ(client.data(), server.data());
}

TEST(NodeProtocol, KeyBundleRoundTrip) {
  Rng rng(8);
  std::vector<std::vector<std::uint8_t>> source(5, std::vector<std::uint8_t>(7));
  for (auto& row : source) {
    for (auto& b : row) b = static_cast<std::uint8_t>(rng.below(256));
  }
  const auto keys = coding::NullKeySet<gf::Gf256>::generate(9, source, 3, rng);
  const auto bytes = keys.serialize();
  const auto parsed = coding::NullKeySet<gf::Gf256>::deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->generation(), 9u);
  EXPECT_EQ(parsed->key_count(), 3u);

  // Parsed keys verify exactly what the originals verify.
  coding::SourceEncoder<gf::Gf256> enc(9, source);
  for (int i = 0; i < 50; ++i) {
    const auto p = enc.emit(rng);
    EXPECT_TRUE(parsed->verify(p));
    auto bad = p;
    bad.payload[0] ^= 0x5A;
    EXPECT_FALSE(parsed->verify(bad));
  }

  // Malformed bundles are rejected.
  EXPECT_FALSE(coding::NullKeySet<gf::Gf256>::deserialize({}).has_value());
  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_FALSE(coding::NullKeySet<gf::Gf256>::deserialize(truncated).has_value());
  auto zeroed = bytes;
  zeroed[4] = 0;
  zeroed[5] = 0;  // g = 0
  EXPECT_FALSE(coding::NullKeySet<gf::Gf256>::deserialize(zeroed).has_value());
}

TEST(NodeProtocol, CongestionOffloadShedsOneThread) {
  Fixture f(12, 8, 3, 8);
  f.driver->run(3);
  ClientNode& node = *f.clients[4];
  ASSERT_EQ(node.degree(), 3u);

  node.request_offload(f.driver->network());
  f.driver->run(3);
  EXPECT_EQ(node.degree(), 2u);
  EXPECT_EQ(f.server->matrix().row(node.address()).threads.size(), 2u);

  // The stream must keep flowing for everyone, including the shedder.
  EXPECT_TRUE(f.driver->run_until_decoded(400));
}

TEST(NodeProtocol, CongestionRestoreReturnsThread) {
  Fixture f(12, 8, 3, 8);
  f.driver->run(3);
  ClientNode& node = *f.clients[4];
  node.request_offload(f.driver->network());
  f.driver->run(3);
  ASSERT_EQ(node.degree(), 2u);

  node.request_restore(f.driver->network());
  f.driver->run(3);
  EXPECT_EQ(node.degree(), 3u);
  EXPECT_EQ(f.server->matrix().row(node.address()).threads.size(), 3u);
  EXPECT_TRUE(f.driver->run_until_decoded(400));
}

TEST(NodeProtocol, OffloadCannotDropLastThread) {
  Fixture f(6, 8, 2, 6);
  f.driver->run(3);
  ClientNode& node = *f.clients[0];
  node.request_offload(f.driver->network());
  f.driver->run(2);
  EXPECT_EQ(node.degree(), 1u);
  // The server must refuse to empty the row.
  node.request_offload(f.driver->network());
  f.driver->run(2);
  EXPECT_EQ(node.degree(), 1u);
  EXPECT_EQ(f.server->matrix().row(node.address()).threads.size(), 1u);
}

TEST(NodeProtocol, OffloadSplicesDownstreamCorrectly) {
  // After node X sheds column c, X's former child on c must be fed by X's
  // former parent on c — verified through actual decode completion and
  // matrix consistency under repeated offloads.
  Fixture f(20, 8, 3, 8);
  f.driver->run(3);
  Rng rng(42);
  for (int i = 0; i < 10; ++i) {
    f.clients[rng.below(20)]->request_offload(f.driver->network());
    f.driver->run(2);
    ASSERT_TRUE(f.server->matrix().check_invariants());
  }
  EXPECT_TRUE(f.driver->run_until_decoded(600));
  for (auto& c : f.clients) EXPECT_EQ(c->data(), f.server->data());
}

TEST(NodeProtocol, HeterogeneousDegreeJoins) {
  // Section 5 at message level: DSL peers request d=2, fiber peers d=5, on
  // the same curtain; everyone streams at their own width.
  ServerConfig scfg;
  scfg.k = 10;
  scfg.default_degree = 3;
  scfg.generation_size = 8;
  scfg.symbols = 8;
  ServerNode server(scfg, std::vector<std::uint8_t>(64, 7));

  ClientConfig ccfg;
  std::vector<std::unique_ptr<ClientNode>> clients;
  std::vector<ClientNode*> ptrs;
  for (Address a = 1; a <= 12; ++a) {
    clients.push_back(std::make_unique<ClientNode>(a, ccfg));
    ptrs.push_back(clients.back().get());
  }
  TickDriver driver(server, ptrs);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    clients[i]->join(driver.network(), i % 2 == 0 ? 2u : 5u);
  }
  driver.run(3);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    EXPECT_EQ(server.matrix().row(clients[i]->address()).threads.size(),
              i % 2 == 0 ? 2u : 5u);
    EXPECT_EQ(clients[i]->degree(), i % 2 == 0 ? 2u : 5u);
  }
  // Out-of-range requests fall back to the default.
  auto odd = std::make_unique<ClientNode>(99, ccfg);
  driver.add_client(odd.get());
  odd->join(driver.network(), 11);  // > k
  driver.run(3);
  EXPECT_EQ(server.matrix().row(99).threads.size(), 3u);

  EXPECT_TRUE(driver.run_until_decoded(400));
}

TEST(NodeProtocol, ClientValidation) {
  ClientConfig cfg;
  EXPECT_THROW(ClientNode(kServerAddress, cfg), std::invalid_argument);
}

TEST(NodeProtocol, NetworkBasics) {
  InMemoryNetwork net;
  EXPECT_TRUE(net.idle());
  Message m;
  m.type = MessageType::kJoinRequest;
  m.from = 1;
  m.to = 0;
  net.send(m);
  EXPECT_FALSE(net.idle());
  EXPECT_EQ(net.messages_sent(), 1u);
  const auto got = net.poll(0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->from, 1u);
  EXPECT_FALSE(net.poll(0).has_value());

  net.crash(2);
  m.to = 2;
  net.send(m);
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_FALSE(net.poll(2).has_value());
  net.revive(2);
  net.send(m);
  EXPECT_TRUE(net.poll(2).has_value());
}

}  // namespace
}  // namespace ncast
