// GF(2) trait tests — the binary field used by the field-size ablation.

#include "gf/gf2.hpp"

#include <gtest/gtest.h>

#include "field_axioms.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using gf::Gf2;

TEST(Gf2, AdditiveGroup) {
  Rng rng(1);
  testing::check_additive_group<Gf2>(testing::sample_elements<Gf2>(4, rng));
}

TEST(Gf2, MultiplicativeGroup) {
  Rng rng(2);
  testing::check_multiplicative_group<Gf2>(testing::sample_elements<Gf2>(4, rng));
}

TEST(Gf2, Pow) {
  Rng rng(3);
  testing::check_pow<Gf2>({0, 1});
}

TEST(Gf2, TruthTables) {
  EXPECT_EQ(Gf2::add(0, 0), 0);
  EXPECT_EQ(Gf2::add(0, 1), 1);
  EXPECT_EQ(Gf2::add(1, 1), 0);
  EXPECT_EQ(Gf2::mul(1, 1), 1);
  EXPECT_EQ(Gf2::mul(1, 0), 0);
  EXPECT_EQ(Gf2::inv(1), 1);
}

TEST(Gf2, RegionOpsMatchScalar) {
  Rng rng(4);
  for (std::size_t len : {0u, 1u, 7u, 100u}) {
    testing::check_region_ops<Gf2>(rng, len);
  }
}

}  // namespace
}  // namespace ncast
