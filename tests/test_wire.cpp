// Wire-format tests: round trips for both fields, and defensive rejection of
// every class of malformed buffer.

#include "coding/wire.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ncast {
namespace {

using coding::CodedPacket;

template <typename Field>
CodedPacket<Field> random_packet(std::size_t g, std::size_t symbols, Rng& rng) {
  CodedPacket<Field> p;
  p.generation = static_cast<std::uint32_t>(rng.below(1u << 30));
  p.coeffs.resize(g);
  p.payload.resize(symbols);
  for (auto& c : p.coeffs) {
    c = static_cast<typename Field::value_type>(rng.below(Field::order));
  }
  for (auto& s : p.payload) {
    s = static_cast<typename Field::value_type>(rng.below(Field::order));
  }
  return p;
}

TEST(Wire, RoundTripGf256) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto p = random_packet<gf::Gf256>(1 + rng.below(64), 1 + rng.below(256), rng);
    const auto bytes = coding::serialize(p);
    EXPECT_EQ(bytes.size(),
              coding::wire_size<gf::Gf256>(p.coeffs.size(), p.payload.size()));
    const auto q = coding::deserialize<gf::Gf256>(bytes);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->generation, p.generation);
    EXPECT_EQ(q->coeffs, p.coeffs);
    EXPECT_EQ(q->payload, p.payload);
  }
}

TEST(Wire, RoundTripGf2_16) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto p = random_packet<gf::Gf2_16>(1 + rng.below(32), 1 + rng.below(64), rng);
    const auto bytes = coding::serialize(p);
    const auto q = coding::deserialize<gf::Gf2_16>(bytes);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->coeffs, p.coeffs);
    EXPECT_EQ(q->payload, p.payload);
  }
}

TEST(Wire, HeaderLayoutIsStable) {
  CodedPacket<gf::Gf256> p;
  p.generation = 0x01020304;
  p.coeffs = {9, 8};
  p.payload = {7};
  const auto bytes = coding::serialize(p);
  ASSERT_EQ(bytes.size(), 15u);
  EXPECT_EQ(bytes[0], 0x43);  // 'C' (magic little-endian)
  EXPECT_EQ(bytes[1], 0x4E);  // 'N'
  EXPECT_EQ(bytes[2], 1);     // version
  EXPECT_EQ(bytes[3], 1);     // GF(2^8)
  EXPECT_EQ(bytes[4], 0x04);  // generation LE
  EXPECT_EQ(bytes[7], 0x01);
  EXPECT_EQ(bytes[8], 2);     // g
  EXPECT_EQ(bytes[10], 1);    // symbols
  EXPECT_EQ(bytes[12], 9);
  EXPECT_EQ(bytes[13], 8);
  EXPECT_EQ(bytes[14], 7);
}

TEST(Wire, RejectsMalformedBuffers) {
  Rng rng(3);
  const auto p = random_packet<gf::Gf256>(4, 8, rng);
  const auto good = coding::serialize(p);

  // Truncated header.
  EXPECT_FALSE(coding::deserialize<gf::Gf256>({0x43, 0x4E, 1}).has_value());
  // Empty.
  EXPECT_FALSE(coding::deserialize<gf::Gf256>({}).has_value());
  // Bad magic.
  auto bad = good;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Bad version.
  bad = good;
  bad[2] = 99;
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Wrong field.
  EXPECT_FALSE(coding::deserialize<gf::Gf2_16>(good).has_value());
  // Truncated body.
  bad = good;
  bad.pop_back();
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Extra bytes.
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Zero dimensions.
  bad = good;
  bad[8] = 0;
  bad[9] = 0;
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
}

TEST(Wire, FuzzNeverCrashes) {
  // Random byte soup must never produce UB or throw — just nullopt (or, for
  // soup that accidentally forms a valid header, a well-formed packet).
  Rng rng(4);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> soup(rng.below(64));
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng.below(256));
    const auto q = coding::deserialize<gf::Gf256>(soup);
    if (q) {
      EXPECT_FALSE(q->coeffs.empty());
      EXPECT_FALSE(q->payload.empty());
    }
  }
}

TEST(Wire, GenerationBoundaryValues) {
  CodedPacket<gf::Gf256> p;
  p.generation = 0xFFFFFFFF;
  p.coeffs = {1};
  p.payload = {2};
  const auto q = coding::deserialize<gf::Gf256>(coding::serialize(p));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->generation, 0xFFFFFFFFu);
}

// ---- version 2: structured packets with compact coefficient strips --------

using coding::GenerationStructure;

/// A well-formed strip packet for the given placement.
template <typename Field>
CodedPacket<Field> strip_packet(std::size_t offset, std::size_t width,
                                std::size_t class_id, std::size_t symbols,
                                Rng& rng) {
  auto p = random_packet<Field>(width, symbols, rng);
  p.band_offset = static_cast<std::uint16_t>(offset);
  p.class_id = static_cast<std::uint16_t>(class_id);
  return p;
}

template <typename Field>
void expect_same_packet(const CodedPacket<Field>& got,
                        const CodedPacket<Field>& want) {
  EXPECT_EQ(got.generation, want.generation);
  EXPECT_EQ(got.band_offset, want.band_offset);
  EXPECT_EQ(got.class_id, want.class_id);
  EXPECT_EQ(got.coeffs, want.coeffs);
  EXPECT_EQ(got.payload, want.payload);
}

template <typename Field>
void run_structured_round_trip(std::uint64_t seed) {
  Rng rng(seed);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t g = 1 + rng.below(32);
    const std::size_t w = 1 + rng.below(g);
    const bool wrap = rng.below(2) == 1;
    const auto s = GenerationStructure::banded(g, w, wrap);
    const std::size_t offset = rng.below(s.wrap ? g : g - w + 1);
    const auto p =
        strip_packet<Field>(offset, w, 0, 1 + rng.below(32), rng);

    const auto bytes = coding::serialize_structured(p, s);
    EXPECT_EQ(bytes.size(), coding::wire_size_structured<Field>(
                                p.coeffs.size(), p.payload.size()));
    const auto generic = coding::deserialize<Field>(bytes);
    ASSERT_TRUE(generic.has_value());
    expect_same_packet(*generic, p);
    const auto strict = coding::deserialize<Field>(bytes, s);
    ASSERT_TRUE(strict.has_value());
    expect_same_packet(*strict, p);
  }
}

TEST(WireV2, RoundTripBandedGf256) { run_structured_round_trip<gf::Gf256>(5); }

TEST(WireV2, RoundTripBandedGf2_16) {
  run_structured_round_trip<gf::Gf2_16>(6);
}

TEST(WireV2, RoundTripOverlapped) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t g = 2 + rng.below(32);
    const std::size_t c = 1 + rng.below(g);
    const std::size_t v = c > 1 ? rng.below(c) : 0;
    const auto s = GenerationStructure::overlapping(g, c, v);
    const std::size_t k = rng.below(s.num_classes());
    const auto p = strip_packet<gf::Gf256>(s.class_begin(k), s.class_width(k),
                                           k, 1 + rng.below(16), rng);
    const auto strict =
        coding::deserialize<gf::Gf256>(coding::serialize_structured(p, s), s);
    ASSERT_TRUE(strict.has_value());
    expect_same_packet(*strict, p);
  }
}

// Byte-for-byte golden for the version-2 header, so the layout documented in
// wire.hpp can't drift silently.
TEST(WireV2, HeaderLayoutIsStable) {
  CodedPacket<gf::Gf256> p;
  p.generation = 0x01020304;
  p.band_offset = 1;
  p.class_id = 0;
  p.coeffs = {9, 8};
  p.payload = {7};
  const auto bytes =
      coding::serialize_structured(p, GenerationStructure::banded(4, 2));
  ASSERT_EQ(bytes.size(), 23u);
  EXPECT_EQ(bytes[0], 0x43);  // 'C' (magic little-endian)
  EXPECT_EQ(bytes[1], 0x4E);  // 'N'
  EXPECT_EQ(bytes[2], 2);     // version
  EXPECT_EQ(bytes[3], 1);     // GF(2^8)
  EXPECT_EQ(bytes[4], 0x04);  // generation LE
  EXPECT_EQ(bytes[7], 0x01);
  EXPECT_EQ(bytes[8], 4);   // g (from the structure, not the strip)
  EXPECT_EQ(bytes[10], 1);  // symbols
  EXPECT_EQ(bytes[12], 1);  // kind = banded
  EXPECT_EQ(bytes[13], 0);  // flags: no wrap (1 + 2 <= 4)
  EXPECT_EQ(bytes[14], 1);  // band offset LE
  EXPECT_EQ(bytes[15], 0);
  EXPECT_EQ(bytes[16], 0);  // class id LE
  EXPECT_EQ(bytes[18], 2);  // coefficient count LE
  EXPECT_EQ(bytes[20], 9);  // compact strip
  EXPECT_EQ(bytes[21], 8);
  EXPECT_EQ(bytes[22], 7);  // payload
}

TEST(WireV2, WrapFlagRoundTrip) {
  const auto s = GenerationStructure::banded(8, 4, true);
  Rng rng(8);
  auto p = strip_packet<gf::Gf256>(6, 4, 0, 2, rng);  // 6 + 4 > 8: wraps
  const auto bytes = coding::serialize_structured(p, s);
  EXPECT_EQ(bytes[13], coding::kWireFlagWrap);
  const auto q = coding::deserialize<gf::Gf256>(bytes, s);
  ASSERT_TRUE(q.has_value());
  expect_same_packet(*q, p);
  // The same placement is malformed under a non-wrap structure.
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(
                   bytes, GenerationStructure::banded(8, 4))
                   .has_value());
}

TEST(WireV2, RejectsMalformedBuffers) {
  const auto s = GenerationStructure::banded(8, 4);
  Rng rng(9);
  const auto p = strip_packet<gf::Gf256>(2, 4, 0, 2, rng);
  const auto good = coding::serialize_structured(p, s);
  ASSERT_TRUE(coding::deserialize<gf::Gf256>(good).has_value());

  // Truncated to header-only.
  auto bad = std::vector<std::uint8_t>(good.begin(), good.begin() + 19);
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Unknown structure kind.
  bad = good;
  bad[12] = 3;
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Unknown flag bits.
  bad = good;
  bad[13] = 0x02;
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Wrap flag set but the strip doesn't wrap (2 + 4 <= 8).
  bad = good;
  bad[13] = coding::kWireFlagWrap;
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Strip runs past g without the wrap flag (7 + 4 > 8).
  bad = good;
  bad[14] = 7;
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Offset out of range entirely.
  bad = good;
  bad[14] = 8;
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Band width (coefficient count) larger than g.
  bad = good;
  bad[18] = 9;
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Zero coefficients.
  bad = good;
  bad[18] = 0;
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Truncated compact coefficients / trailing garbage.
  bad = good;
  bad.pop_back();
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Wrong field id for the requested field.
  EXPECT_FALSE(coding::deserialize<gf::Gf2_16>(good).has_value());

  // Dense kind must carry a full-width strip with no class id.
  CodedPacket<gf::Gf256> dense = random_packet<gf::Gf256>(4, 2, rng);
  const auto dense_good =
      coding::serialize_structured(dense, GenerationStructure::dense(4));
  ASSERT_TRUE(coding::deserialize<gf::Gf256>(dense_good).has_value());
  bad = dense_good;
  bad[16] = 1;  // class id on a dense packet
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());

  // Overlapped classes never wrap.
  const auto ws = GenerationStructure::banded(8, 4, true);
  auto wp = strip_packet<gf::Gf256>(6, 4, 0, 2, rng);
  bad = coding::serialize_structured(wp, ws);
  bad[12] = 2;  // rewrite kind to overlapped, wrap flag still set
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
}

TEST(WireV2, StrictOverloadEnforcesReceiverStructure) {
  const auto over = GenerationStructure::overlapping(8, 4, 1);  // classes 0,3,6
  Rng rng(10);
  const auto p = strip_packet<gf::Gf256>(3, 4, 1, 4, rng);  // valid class 1
  const auto good = coding::serialize_structured(p, over);
  ASSERT_TRUE(coding::deserialize<gf::Gf256>(good, over).has_value());

  // Class id out of range: passes the generic stage (nothing in the header
  // contradicts it), dies against the structure.
  auto bad = good;
  bad[16] = 3;
  EXPECT_TRUE(coding::deserialize<gf::Gf256>(bad).has_value());
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad, over).has_value());
  // Right class id, wrong offset for it.
  bad = good;
  bad[16] = 2;
  EXPECT_TRUE(coding::deserialize<gf::Gf256>(bad).has_value());
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad, over).has_value());

  // Band width mismatch: a width-3 strip is a fine banded packet in general
  // but not under a width-4 structure.
  const auto narrow = coding::serialize_structured(
      strip_packet<gf::Gf256>(1, 3, 0, 4, rng), GenerationStructure::banded(8, 3));
  EXPECT_TRUE(coding::deserialize<gf::Gf256>(narrow).has_value());
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(narrow,
                                              GenerationStructure::banded(8, 4))
                   .has_value());
  // Generation-size and kind mismatches.
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(narrow,
                                              GenerationStructure::banded(16, 3))
                   .has_value());
  EXPECT_FALSE(
      coding::deserialize<gf::Gf256>(narrow, GenerationStructure::dense(8))
          .has_value());

  // Version-1 buffers are dense packets: accepted by a dense structure of the
  // right size, rejected by sparse ones.
  const auto v1 = coding::serialize(random_packet<gf::Gf256>(8, 4, rng));
  EXPECT_TRUE(
      coding::deserialize<gf::Gf256>(v1, GenerationStructure::dense(8))
          .has_value());
  EXPECT_FALSE(
      coding::deserialize<gf::Gf256>(v1, GenerationStructure::banded(8, 4))
          .has_value());
  EXPECT_FALSE(
      coding::deserialize<gf::Gf256>(v1, GenerationStructure::dense(4))
          .has_value());
}

TEST(WireV2, FuzzNeverCrashes) {
  Rng rng(11);
  const auto s = GenerationStructure::banded(16, 4);
  const auto good = coding::serialize_structured(
      strip_packet<gf::Gf256>(5, 4, 0, 8, rng), s);
  // Mutation fuzz: every single-byte corruption of a valid buffer either
  // still parses to a consistent packet or yields nullopt — never UB.
  for (std::size_t i = 0; i < good.size(); ++i) {
    for (int trial = 0; trial < 4; ++trial) {
      auto bad = good;
      bad[i] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      const auto q = coding::deserialize<gf::Gf256>(bad);
      if (q) {
        EXPECT_FALSE(q->coeffs.empty());
        EXPECT_FALSE(q->payload.empty());
      }
      // The strict overload must be at least as picky.
      const auto qs = coding::deserialize<gf::Gf256>(bad, s);
      if (qs) {
        EXPECT_TRUE(q.has_value());
      }
    }
  }
  // Byte-soup fuzz pinned to version 2.
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> soup(rng.below(64));
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng.below(256));
    if (soup.size() >= 3) {
      soup[0] = 0x43;
      soup[1] = 0x4E;
      soup[2] = coding::kWireVersionStructured;
    }
    const auto q = coding::deserialize<gf::Gf256>(soup);
    if (q) {
      EXPECT_FALSE(q->coeffs.empty());
      EXPECT_FALSE(q->payload.empty());
    }
  }
}

}  // namespace
}  // namespace ncast
