// Wire-format tests: round trips for both fields, and defensive rejection of
// every class of malformed buffer.

#include "coding/wire.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ncast {
namespace {

using coding::CodedPacket;

template <typename Field>
CodedPacket<Field> random_packet(std::size_t g, std::size_t symbols, Rng& rng) {
  CodedPacket<Field> p;
  p.generation = static_cast<std::uint32_t>(rng.below(1u << 30));
  p.coeffs.resize(g);
  p.payload.resize(symbols);
  for (auto& c : p.coeffs) {
    c = static_cast<typename Field::value_type>(rng.below(Field::order));
  }
  for (auto& s : p.payload) {
    s = static_cast<typename Field::value_type>(rng.below(Field::order));
  }
  return p;
}

TEST(Wire, RoundTripGf256) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto p = random_packet<gf::Gf256>(1 + rng.below(64), 1 + rng.below(256), rng);
    const auto bytes = coding::serialize(p);
    EXPECT_EQ(bytes.size(),
              coding::wire_size<gf::Gf256>(p.coeffs.size(), p.payload.size()));
    const auto q = coding::deserialize<gf::Gf256>(bytes);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->generation, p.generation);
    EXPECT_EQ(q->coeffs, p.coeffs);
    EXPECT_EQ(q->payload, p.payload);
  }
}

TEST(Wire, RoundTripGf2_16) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto p = random_packet<gf::Gf2_16>(1 + rng.below(32), 1 + rng.below(64), rng);
    const auto bytes = coding::serialize(p);
    const auto q = coding::deserialize<gf::Gf2_16>(bytes);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->coeffs, p.coeffs);
    EXPECT_EQ(q->payload, p.payload);
  }
}

TEST(Wire, HeaderLayoutIsStable) {
  CodedPacket<gf::Gf256> p;
  p.generation = 0x01020304;
  p.coeffs = {9, 8};
  p.payload = {7};
  const auto bytes = coding::serialize(p);
  ASSERT_EQ(bytes.size(), 15u);
  EXPECT_EQ(bytes[0], 0x43);  // 'C' (magic little-endian)
  EXPECT_EQ(bytes[1], 0x4E);  // 'N'
  EXPECT_EQ(bytes[2], 1);     // version
  EXPECT_EQ(bytes[3], 1);     // GF(2^8)
  EXPECT_EQ(bytes[4], 0x04);  // generation LE
  EXPECT_EQ(bytes[7], 0x01);
  EXPECT_EQ(bytes[8], 2);     // g
  EXPECT_EQ(bytes[10], 1);    // symbols
  EXPECT_EQ(bytes[12], 9);
  EXPECT_EQ(bytes[13], 8);
  EXPECT_EQ(bytes[14], 7);
}

TEST(Wire, RejectsMalformedBuffers) {
  Rng rng(3);
  const auto p = random_packet<gf::Gf256>(4, 8, rng);
  const auto good = coding::serialize(p);

  // Truncated header.
  EXPECT_FALSE(coding::deserialize<gf::Gf256>({0x43, 0x4E, 1}).has_value());
  // Empty.
  EXPECT_FALSE(coding::deserialize<gf::Gf256>({}).has_value());
  // Bad magic.
  auto bad = good;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Bad version.
  bad = good;
  bad[2] = 99;
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Wrong field.
  EXPECT_FALSE(coding::deserialize<gf::Gf2_16>(good).has_value());
  // Truncated body.
  bad = good;
  bad.pop_back();
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Extra bytes.
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
  // Zero dimensions.
  bad = good;
  bad[8] = 0;
  bad[9] = 0;
  EXPECT_FALSE(coding::deserialize<gf::Gf256>(bad).has_value());
}

TEST(Wire, FuzzNeverCrashes) {
  // Random byte soup must never produce UB or throw — just nullopt (or, for
  // soup that accidentally forms a valid header, a well-formed packet).
  Rng rng(4);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> soup(rng.below(64));
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng.below(256));
    const auto q = coding::deserialize<gf::Gf256>(soup);
    if (q) {
      EXPECT_FALSE(q->coeffs.empty());
      EXPECT_FALSE(q->payload.empty());
    }
  }
}

TEST(Wire, GenerationBoundaryValues) {
  CodedPacket<gf::Gf256> p;
  p.generation = 0xFFFFFFFF;
  p.coeffs = {1};
  p.payload = {2};
  const auto q = coding::deserialize<gf::Gf256>(coding::serialize(p));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->generation, 0xFFFFFFFFu);
}

}  // namespace
}  // namespace ncast
