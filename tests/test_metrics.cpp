// Metrics registry tests: counter/gauge/histogram semantics, log-bucket
// quantile estimates, registry name rules, and the JSON writer.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "obs/json.hpp"

namespace ncast::obs {
namespace {

// Mutation semantics only hold with instrumentation compiled in; with
// NCAST_OBS=OFF every update is a no-op by design, so the value-dependent
// tests below are compiled out (the no-op contract itself is checked at the
// bottom of the file).
#if NCAST_OBS_ENABLED

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddAndHighWater) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set_max(4.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, SingleSampleQuantileIsExact) {
  Histogram h;
  h.observe(137.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 137.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 137.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 137.0);
}

TEST(Histogram, TracksSumMinMaxMean) {
  Histogram h;
  h.observe(10.0);
  h.observe(20.0);
  h.observe(30.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 60.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 30.0);
}

TEST(Histogram, QuantileWithinBucketTolerance) {
  // Log-spaced samples: the quarter-octave buckets bound relative error at
  // ~2^(1/8)-1 ~ 9% per side; allow 15% for slack at bucket edges.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const double p50 = h.quantile(0.5);
  const double p90 = h.quantile(0.9);
  const double p99 = h.quantile(0.99);
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.15);
  EXPECT_NEAR(p90, 900.0, 900.0 * 0.15);
  EXPECT_NEAR(p99, 990.0, 990.0 * 0.15);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 1000.0);
}

TEST(Histogram, BucketIndexIsMonotoneAndBoundsHold) {
  std::size_t prev = 0;
  for (double x : {0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0, 1e6, 1e12}) {
    const auto i = Histogram::bucket_index(x);
    EXPECT_GE(i, prev) << "x = " << x;
    prev = i;
    if (i > 0) {
      EXPECT_LE(Histogram::bucket_low(i), x) << "x = " << x;
      if (i + 1 < Histogram::kBuckets) {
        EXPECT_GT(Histogram::bucket_low(i + 1), x) << "x = " << x;
      }
    }
  }
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);     // underflow bucket
  EXPECT_EQ(Histogram::bucket_index(0.999), 0u);   // still below 1
  EXPECT_EQ(Histogram::bucket_index(1.0), 1u);     // first real bucket
}

#endif  // NCAST_OBS_ENABLED

TEST(Registry, GetOrCreateReturnsStableReferences) {
  Registry r;
  Counter& a = r.counter("x.count");
  Counter& b = r.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.inc(7);
  EXPECT_EQ(r.counter("x.count").value(), NCAST_OBS_ENABLED ? 7u : 0u);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Registry, NameCollisionAcrossKindsThrows) {
  Registry r;
  r.counter("dual.use");
  EXPECT_THROW(r.gauge("dual.use"), std::invalid_argument);
  EXPECT_THROW(r.histogram("dual.use"), std::invalid_argument);
  r.histogram("h.only");
  EXPECT_THROW(r.counter("h.only"), std::invalid_argument);
}

TEST(Registry, ResetValuesKeepsRegistrations) {
  Registry r;
  Counter& c = r.counter("c");
  Gauge& g = r.gauge("g");
  Histogram& h = r.histogram("h");
  c.inc(5);
  g.set(2.0);
  h.observe(10.0);
  r.reset_values();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(&c, &r.counter("c"));  // same object, zeroed
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Registry, WriteJsonEmitsAllSections) {
  Registry r;
  r.counter("events").inc(3);
  r.gauge("depth").set(4.5);
  r.histogram("lat").observe(100.0);
  const std::string s = r.snapshot_json();
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"gauges\""), std::string::npos);
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s.find("\"p99\""), std::string::npos);
#if NCAST_OBS_ENABLED
  EXPECT_NE(s.find("\"events\":3"), std::string::npos);
  EXPECT_NE(s.find("\"depth\":4.5"), std::string::npos);
  EXPECT_NE(s.find("\"count\":1"), std::string::npos);
#endif
}

TEST(Registry, GlobalRegistryIsASingleton) {
  Counter& a = metrics().counter("test_metrics.singleton");
  Counter& b = metrics().counter("test_metrics.singleton");
  EXPECT_EQ(&a, &b);
}

TEST(ScopeTimer, RecordsOneObservation) {
  Histogram h;
  { ScopeTimer t(h); }
#if NCAST_OBS_ENABLED
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
#else
  EXPECT_EQ(h.count(), 0u);
#endif
}

#if !NCAST_OBS_ENABLED
TEST(KillSwitch, UpdatesAreNoOps) {
  Counter c;
  c.inc(5);
  EXPECT_EQ(c.value(), 0u);
  Gauge g;
  g.set(1.0);
  g.add(2.0);
  g.set_max(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  Histogram h;
  h.observe(10.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}
#endif

TEST(JsonWriterTest, NestedShapes) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(std::uint64_t{1});
  w.key("b").begin_array();
  w.value("x");
  w.value(2.5);
  w.end_array();
  w.key("c").begin_object();
  w.key("d").value(true);
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":["x",2.5],"c":{"d":true}})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("a\"b\\c\n\t\x01");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\"}");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

}  // namespace
}  // namespace ncast::obs
