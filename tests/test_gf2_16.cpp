// GF(2^16) arithmetic tests: same axiom suite as GF(2^8) plus sampled
// inverse checks (exhaustive is unnecessary at 65536 elements).

#include "gf/gf2_16.hpp"

#include <gtest/gtest.h>

#include "field_axioms.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using gf::Gf2_16;

TEST(Gf2_16, AdditiveGroup) {
  Rng rng(1);
  testing::check_additive_group<Gf2_16>(testing::sample_elements<Gf2_16>(8, rng));
}

TEST(Gf2_16, MultiplicativeGroup) {
  Rng rng(2);
  testing::check_multiplicative_group<Gf2_16>(testing::sample_elements<Gf2_16>(8, rng));
}

TEST(Gf2_16, Pow) {
  Rng rng(3);
  testing::check_pow<Gf2_16>(testing::sample_elements<Gf2_16>(12, rng));
}

TEST(Gf2_16, SampledInverses) {
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.between(1, 65535));
    EXPECT_EQ(Gf2_16::mul(a, Gf2_16::inv(a)), 1);
  }
}

TEST(Gf2_16, DivMulRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.below(65536));
    const auto b = static_cast<std::uint16_t>(rng.between(1, 65535));
    EXPECT_EQ(Gf2_16::mul(Gf2_16::div(a, b), b), a);
  }
}

TEST(Gf2_16, KnownProducts) {
  EXPECT_EQ(Gf2_16::mul(2, 2), 4);
  // x^16 reduces to x^12 + x^3 + x + 1 = 0x100B under 0x1100B.
  EXPECT_EQ(Gf2_16::mul(0x8000, 2), 0x100B);
}

TEST(Gf2_16, GeneratorHasFullOrder) {
  // 2 is primitive for 0x1100B.
  std::uint16_t x = 1;
  for (int i = 0; i < 65535; ++i) {
    x = Gf2_16::mul(x, 2);
    if (x == 1) {
      EXPECT_EQ(i, 65534);  // first return to 1 is at the full order
      return;
    }
  }
  EXPECT_EQ(x, 1);
}

TEST(Gf2_16, RegionOpsMatchScalar) {
  Rng rng(6);
  for (std::size_t len : {0u, 1u, 2u, 5u, 16u, 333u}) {
    testing::check_region_ops<Gf2_16>(rng, len);
  }
}

TEST(Gf2_16, RegionOpsWithZerosInData) {
  // The log-table fast path must skip zero symbols correctly.
  std::vector<std::uint16_t> dst{0, 5, 0, 7}, src{3, 0, 0, 9};
  const auto orig = dst;
  Gf2_16::region_madd(dst.data(), src.data(), 1234, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(dst[i], Gf2_16::add(orig[i], Gf2_16::mul(1234, src[i])));
  }
}

}  // namespace
}  // namespace ncast
