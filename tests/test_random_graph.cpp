// Section 6 random-graph overlay tests: degree preservation, connectivity,
// graceful-leave splicing, and logarithmic depth.

#include "overlay/random_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ncast {
namespace {

using overlay::RandomGraphOverlay;

TEST(RandomGraph, ConstructionValidation) {
  EXPECT_THROW(RandomGraphOverlay(0, 2, Rng(1)), std::invalid_argument);
  EXPECT_THROW(RandomGraphOverlay(2, 0, Rng(1)), std::invalid_argument);
}

TEST(RandomGraph, SeedTopology) {
  RandomGraphOverlay o(3, 2, Rng(2));
  EXPECT_EQ(o.node_count(), 2u);
  EXPECT_EQ(o.graph().out_degree(RandomGraphOverlay::kServer), 6u);
}

TEST(RandomGraph, JoinPreservesAllDegrees) {
  RandomGraphOverlay o(2, 2, Rng(3));
  std::vector<graph::Vertex> nodes;
  for (int i = 0; i < 50; ++i) nodes.push_back(o.join());
  // Edge splitting preserves endpoint degrees and gives every newcomer
  // d in + d out. The two seed children are the bootstrap sinks: in-degree d,
  // out-degree 0 (nothing hangs below them until someone splits... splitting
  // their in-edges still leaves them sinks — only insertions create out-edges).
  for (graph::Vertex v = 1; v <= 2; ++v) {
    EXPECT_EQ(o.graph().in_degree(v), 2u) << "seed " << v;
  }
  for (graph::Vertex v = 3; v < o.graph().vertex_count(); ++v) {
    EXPECT_EQ(o.graph().in_degree(v), 2u) << "vertex " << v;
    EXPECT_EQ(o.graph().out_degree(v), 2u) << "vertex " << v;
  }
  // Server out-degree never changes.
  EXPECT_EQ(o.graph().out_degree(RandomGraphOverlay::kServer), 4u);
}

TEST(RandomGraph, FailureFreeConnectivityEqualsDegree) {
  RandomGraphOverlay o(2, 3, Rng(4));
  std::vector<graph::Vertex> nodes;
  for (int i = 0; i < 30; ++i) nodes.push_back(o.join());
  for (auto v : nodes) EXPECT_EQ(o.connectivity(v), 2);
}

TEST(RandomGraph, LeaveSplicesNeighbors) {
  RandomGraphOverlay o(2, 2, Rng(5));
  std::vector<graph::Vertex> nodes;
  for (int i = 0; i < 30; ++i) nodes.push_back(o.join());
  o.leave(nodes[10]);
  o.leave(nodes[20]);
  // Remaining nodes keep full degree and connectivity.
  for (auto v : nodes) {
    if (v == nodes[10] || v == nodes[20]) continue;
    EXPECT_EQ(o.graph().in_degree(v), 2u);
    EXPECT_EQ(o.connectivity(v), 2);
  }
}

TEST(RandomGraph, FailureCostsNeighborsOnly) {
  RandomGraphOverlay o(2, 2, Rng(6));
  std::vector<graph::Vertex> nodes;
  for (int i = 0; i < 40; ++i) nodes.push_back(o.join());
  o.fail(nodes[5]);
  EXPECT_EQ(o.connectivity(nodes[5]), 0);
  // Connectivity of others can drop by at most their adjacency to the failed
  // node; everyone stays >= 0 and most stay at 2.
  int degraded = 0;
  for (auto v : nodes) {
    if (v == nodes[5]) continue;
    const auto c = o.connectivity(v);
    EXPECT_GE(c, 0);
    EXPECT_LE(c, 2);
    if (c < 2) ++degraded;
  }
  EXPECT_LT(degraded, 20);  // localized damage, not systemic
}

TEST(RandomGraph, Validation) {
  RandomGraphOverlay o(2, 2, Rng(7));
  EXPECT_THROW(o.fail(RandomGraphOverlay::kServer), std::out_of_range);
  EXPECT_THROW(o.leave(RandomGraphOverlay::kServer), std::out_of_range);
  EXPECT_THROW(o.connectivity(RandomGraphOverlay::kServer), std::out_of_range);
  EXPECT_THROW(o.fail(999), std::out_of_range);
  const auto v = o.join();
  o.leave(v);
  EXPECT_THROW(o.leave(v), std::out_of_range);  // already gone
}

TEST(RandomGraph, DepthGrowsLogarithmically) {
  // The headline Section 6 claim: depth ~ O(log N), vs the curtain's O(N).
  auto mean_depth = [](std::size_t n) {
    RandomGraphOverlay o(3, 3, Rng(1234));
    for (std::size_t i = 0; i < n; ++i) o.join();
    const auto depths = o.depths();
    double sum = 0.0;
    std::size_t count = 0;
    for (auto d : depths) {
      if (d > 0) {
        sum += static_cast<double>(d);
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  const double d200 = mean_depth(200);
  const double d800 = mean_depth(800);
  // Quadrupling N should add roughly a constant (log 4 / log branching), not
  // multiply the depth by 4.
  EXPECT_LT(d800, d200 * 2.0);
  EXPECT_GT(d800, d200);  // it does grow a little
}

}  // namespace
}  // namespace ncast
