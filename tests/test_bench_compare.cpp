// Tolerance-logic tests for the perf-regression gate (tools/compare). These
// drive bench_compare_core in-process: budget parsing, pass/fail verdicts in
// both directions, the missing-metric and new-metric cases, the mode guard,
// and the acceptance scenario — an injected 2x regression must fail.

#include "compare/bench_compare_core.hpp"

#include <gtest/gtest.h>

namespace ncast::tools::compare {
namespace {

ValuePtr doc(const std::string& json) {
  return Parser(json).parse();
}

Budget budget(const std::string& spec) {
  Budget b;
  std::string error;
  EXPECT_TRUE(parse_budget(spec, &b, &error)) << error;
  return b;
}

const char* kBaseline = R"({
  "schema":"ncast.bench.v1","bench":"x","smoke":true,"obs_enabled":true,
  "counters":{"net.control_bytes":1000,"engine.events_executed":5000},
  "gauges":{"engine.events_per_sec":200000},
  "histograms":{"decoder.absorb_ns":{"count":10,"p50":500,"p90":900,"p99":2000}},
  "notes":{"events_per_sec":100000}
})";

TEST(BudgetParse, AcceptsTheDocumentedForms) {
  const Budget c = budget("counters:net.control_bytes:le:1.25");
  EXPECT_EQ(c.section, "counters");
  EXPECT_EQ(c.name, "net.control_bytes");
  EXPECT_TRUE(c.stat.empty());
  EXPECT_EQ(c.dir, Budget::Dir::kLe);
  EXPECT_DOUBLE_EQ(c.ratio, 1.25);

  const Budget h = budget("histograms:decoder.absorb_ns:p99:le:10");
  EXPECT_EQ(h.stat, "p99");

  const Budget g = budget("gauges:engine.events_per_sec:ge:0.05");
  EXPECT_EQ(g.dir, Budget::Dir::kGe);
}

TEST(BudgetParse, RejectsMalformedSpecs) {
  Budget b;
  std::string error;
  EXPECT_FALSE(parse_budget("counters:x", &b, &error));
  EXPECT_FALSE(parse_budget("mystery:x:le:1.0", &b, &error));
  EXPECT_FALSE(parse_budget("counters:x:gt:1.0", &b, &error));
  EXPECT_FALSE(parse_budget("counters:x:le:0", &b, &error));
  EXPECT_FALSE(parse_budget("counters:x:le:-2", &b, &error));
  EXPECT_FALSE(parse_budget("counters:x:le:fast", &b, &error));
  // Histograms need a stat; scalar sections must not have one.
  EXPECT_FALSE(parse_budget("histograms:h:le:2", &b, &error));
  EXPECT_FALSE(parse_budget("histograms:h:p42:le:2", &b, &error));
  EXPECT_FALSE(parse_budget("counters:x:p99:le:2", &b, &error));
}

TEST(Compare, WithinBudgetPasses) {
  const auto base = doc(kBaseline);
  const auto fresh = doc(R"({
    "smoke":true,"obs_enabled":true,
    "counters":{"net.control_bytes":1200},
    "histograms":{"decoder.absorb_ns":{"count":10,"p50":480,"p90":880,"p99":2100}}
  })");
  const Report r = compare(*base, *fresh,
                           {budget("counters:net.control_bytes:le:1.25"),
                            budget("histograms:decoder.absorb_ns:p99:le:2")});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.count(Finding::Kind::kPass), 2u);
}

TEST(Compare, InjectedTwoXRegressionFails) {
  // The acceptance criterion: double a gated metric, the gate must trip.
  const auto base = doc(kBaseline);
  const auto fresh = doc(R"({
    "smoke":true,"obs_enabled":true,
    "counters":{"net.control_bytes":2000}
  })");
  const Report r = compare(*base, *fresh,
                           {budget("counters:net.control_bytes:le:1.25")});
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, Finding::Kind::kFail);
  EXPECT_DOUBLE_EQ(r.findings[0].bound, 1250.0);
  EXPECT_DOUBLE_EQ(r.findings[0].fresh, 2000.0);
}

TEST(Compare, GeDirectionGuardsThroughputFloors) {
  const auto base = doc(kBaseline);
  const auto ok_run = doc(R"({"gauges":{"engine.events_per_sec":50000}})");
  const auto slow_run = doc(R"({"gauges":{"engine.events_per_sec":5000}})");
  const auto spec = budget("gauges:engine.events_per_sec:ge:0.1");
  EXPECT_TRUE(compare(*base, *ok_run, {spec}).ok());
  EXPECT_FALSE(compare(*base, *slow_run, {spec}).ok());
}

TEST(Compare, BoundaryIsInclusive) {
  const auto base = doc(kBaseline);
  const auto fresh = doc(R"({"counters":{"net.control_bytes":1250}})");
  EXPECT_TRUE(
      compare(*base, *fresh, {budget("counters:net.control_bytes:le:1.25")})
          .ok());
}

TEST(Compare, BudgetedMetricMissingFromFreshFails) {
  // A gated metric silently vanishing is a regression-shaped hole.
  const auto base = doc(kBaseline);
  const auto fresh = doc(R"({"counters":{}})");
  const Report r = compare(*base, *fresh,
                           {budget("counters:net.control_bytes:le:1.25")});
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, Finding::Kind::kMissingFresh);
}

TEST(Compare, MetricAbsentFromBaselineIsNonFailNewMetric) {
  // Can't gate without a reference; the finding is the baseline-refresh
  // reminder, not a failure.
  const auto base = doc(kBaseline);
  const auto fresh = doc(R"({"counters":{"net.new_thing":42}})");
  const Report r =
      compare(*base, *fresh, {budget("counters:net.new_thing:le:1.25")});
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, Finding::Kind::kNewMetric);
}

TEST(Compare, ModeMismatchFailsRegardlessOfBudgets) {
  const auto base = doc(kBaseline);  // smoke:true
  const auto fresh = doc(R"({
    "smoke":false,"obs_enabled":true,
    "counters":{"net.control_bytes":1000}
  })");
  const Report r = compare(*base, *fresh,
                           {budget("counters:net.control_bytes:le:1.25")});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.count(Finding::Kind::kModeMismatch), 1u);
  // The budget itself passed; the mode guard is what failed the run.
  EXPECT_EQ(r.count(Finding::Kind::kPass), 1u);
}

TEST(Compare, ReportJsonRoundTripsThroughTheReader) {
  const auto base = doc(kBaseline);
  const auto fresh = doc(R"({"counters":{"net.control_bytes":2000}})");
  const Report r = compare(*base, *fresh,
                           {budget("counters:net.control_bytes:le:1.25")});
  const ValuePtr parsed = Parser(r.to_json()).parse();
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->get("schema")->string, "ncast.compare.v1");
  EXPECT_EQ(parsed->get("ok")->kind, Value::Kind::kBool);
  EXPECT_FALSE(parsed->get("ok")->boolean);
  ASSERT_EQ(parsed->get("findings")->array.size(), 1u);
  EXPECT_EQ(parsed->get("findings")->array[0]->get("kind")->string, "fail");
}

}  // namespace
}  // namespace ncast::tools::compare
