// The critical cross-validation: the closed-form polymatroid rank update
// must agree with explicit max-flow on the thread-matrix graph for every
// subset of hanging threads, across random join/failure sequences.

#include "overlay/polymatroid.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <tuple>

#include "overlay/defect.hpp"
#include "overlay/flow_graph.hpp"
#include "overlay/thread_matrix.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using namespace overlay;

TEST(Polymatroid, ConstructionValidation) {
  EXPECT_THROW(PolymatroidCurtain(0), std::invalid_argument);
  EXPECT_THROW(PolymatroidCurtain(23), std::invalid_argument);
  EXPECT_NO_THROW(PolymatroidCurtain(8));
}

TEST(Polymatroid, FreshCurtainRankIsCardinality) {
  PolymatroidCurtain pc(6);
  for (std::uint32_t s = 0; s < (1u << 6); ++s) {
    EXPECT_EQ(pc.rank(s), static_cast<std::uint32_t>(std::popcount(s)));
  }
  EXPECT_EQ(pc.total_defect(3), 0u);
  EXPECT_EQ(pc.defective_tuples(2), 0u);
}

TEST(Polymatroid, TupleCount) {
  EXPECT_EQ(PolymatroidCurtain::tuple_count(6, 2), 15u);
  EXPECT_EQ(PolymatroidCurtain::tuple_count(10, 3), 120u);
  EXPECT_EQ(PolymatroidCurtain::tuple_count(5, 5), 1u);
  EXPECT_EQ(PolymatroidCurtain::tuple_count(22, 11), 705432u);
}

TEST(Polymatroid, JoinValidation) {
  PolymatroidCurtain pc(4);
  EXPECT_THROW(pc.join(0, false), std::invalid_argument);
  EXPECT_THROW(pc.join(1u << 5, false), std::invalid_argument);
  Rng rng(1);
  EXPECT_THROW(pc.join_random(0, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(pc.join_random(5, 0.0, rng), std::invalid_argument);
}

TEST(Polymatroid, WorkingJoinsPreserveFullRank) {
  // Without failures, every subset keeps full rank forever.
  PolymatroidCurtain pc(8);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto conn = pc.join_random(3, 0.0, rng);
    EXPECT_EQ(conn, 3u);
  }
  for (std::uint32_t s = 0; s < (1u << 8); ++s) {
    EXPECT_EQ(pc.rank(s), static_cast<std::uint32_t>(std::popcount(s)));
  }
}

TEST(Polymatroid, SingleFailureKillsItsThreads) {
  PolymatroidCurtain pc(4);
  pc.join(0b0011, true);  // failed node takes threads 0 and 1
  EXPECT_EQ(pc.rank(0b0001), 0u);
  EXPECT_EQ(pc.rank(0b0010), 0u);
  EXPECT_EQ(pc.rank(0b0011), 0u);
  EXPECT_EQ(pc.rank(0b0100), 1u);
  EXPECT_EQ(pc.rank(0b1100), 2u);
  EXPECT_EQ(pc.rank(0b1111), 2u);
  // {0,1} has defect 2; the four mixed pairs {0,2},{0,3},{1,2},{1,3} have
  // defect 1 each; {2,3} is intact.
  EXPECT_EQ(pc.total_defect(2), 6u);
}

TEST(Polymatroid, WorkingJoinRestoresDeadThreads) {
  PolymatroidCurtain pc(4);
  pc.join(0b0011, true);
  // A working node clips dead thread 0 and live thread 2: below it, thread 0
  // carries re-injected information again (1 unit through the node).
  const auto conn = pc.join(0b0101, false);
  EXPECT_EQ(conn, 1u);  // it could only receive on thread 2
  EXPECT_EQ(pc.rank(0b0001), 1u);  // thread 0 lives again
  EXPECT_EQ(pc.rank(0b0101), 1u);  // but both its taps share the 1 unit
  EXPECT_EQ(pc.rank(0b1001), 2u);  // thread 3 is independent
}

TEST(Polymatroid, LemmaSixBoundHolds) {
  // |B' - B| <= (d^2/k) A at every step (Lemma 6).
  const std::uint32_t k = 10, d = 3;
  const double a = static_cast<double>(PolymatroidCurtain::tuple_count(k, d));
  PolymatroidCurtain pc(k);
  Rng rng(3);
  double prev = 0.0;
  for (int i = 0; i < 400; ++i) {
    pc.join_random(d, 0.3, rng);
    const auto b = static_cast<double>(pc.total_defect(d));
    EXPECT_LE(std::abs(b - prev), static_cast<double>(d) * d / k * a + 1e-9)
        << "step " << i;
    prev = b;
  }
}

TEST(Polymatroid, DefectIsMonotoneInFailures) {
  // More failures at the same positions cannot decrease the defect.
  Rng rng(4);
  PolymatroidCurtain none(8), some(8);
  for (int i = 0; i < 100; ++i) {
    // Identical thread choices; `some` fails every 10th node.
    PolymatroidCurtain::Mask mask = 0;
    for (auto c : rng.sample_without_replacement(8, 2)) mask |= 1u << c;
    none.join(mask, false);
    some.join(mask, i % 10 == 0);
  }
  EXPECT_GE(some.total_defect(2), none.total_defect(2));
}

// ---- Ground-truth cross-validation against explicit max-flow ----

class PolymatroidVsMaxflow
    : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(PolymatroidVsMaxflow, RankMatchesTupleConnectivity) {
  const auto [k, d, p, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  PolymatroidCurtain pc(static_cast<std::uint32_t>(k));
  ThreadMatrix m(static_cast<std::uint32_t>(k));
  NodeId next = 0;

  for (int step = 0; step < 60; ++step) {
    const auto picks = rng.sample_without_replacement(
        static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(d));
    PolymatroidCurtain::Mask mask = 0;
    for (auto c : picks) mask |= 1u << c;
    const bool failed = rng.chance(p);

    // The newcomer's connectivity must match the explicit graph *before*
    // the update.
    const auto fg_before = build_flow_graph(m);
    const std::vector<ColumnId> tuple(picks.begin(), picks.end());
    const auto expected_conn = tuple_connectivity(fg_before, tuple);
    const auto reported = pc.join(mask, failed);
    ASSERT_EQ(static_cast<std::int64_t>(reported), expected_conn)
        << "step " << step;

    m.append_row(next++, tuple);
    if (failed) m.mark_failed(next - 1);

    // Every five steps, validate the entire rank function.
    if (step % 5 == 4) {
      const auto fg = build_flow_graph(m);
      for (std::uint32_t s = 1; s < (1u << k); ++s) {
        std::vector<ColumnId> cols;
        for (int c = 0; c < k; ++c) {
          if (s & (1u << c)) cols.push_back(static_cast<ColumnId>(c));
        }
        ASSERT_EQ(static_cast<std::int64_t>(pc.rank(s)),
                  tuple_connectivity(fg, cols))
            << "step " << step << " subset " << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolymatroidVsMaxflow,
    ::testing::Values(std::make_tuple(4, 2, 0.3, 1),
                      std::make_tuple(5, 2, 0.5, 2),
                      std::make_tuple(6, 3, 0.25, 3),
                      std::make_tuple(6, 2, 0.15, 4),
                      std::make_tuple(7, 3, 0.35, 5),
                      std::make_tuple(5, 4, 0.4, 6),
                      std::make_tuple(8, 2, 0.2, 7),
                      std::make_tuple(6, 5, 0.3, 8),
                      std::make_tuple(4, 3, 0.5, 9),
                      std::make_tuple(9, 2, 0.1, 10),
                      std::make_tuple(7, 4, 0.25, 11),
                      std::make_tuple(5, 3, 0.0, 12)));

TEST(Polymatroid, MatchesExactDefectEnumeration) {
  // total_defect must agree with brute-force enumeration over the graph.
  const std::uint32_t k = 6, d = 2;
  Rng rng(9);
  PolymatroidCurtain pc(k);
  ThreadMatrix m(k);
  NodeId next = 0;
  for (int step = 0; step < 40; ++step) {
    const auto picks = rng.sample_without_replacement(k, d);
    PolymatroidCurtain::Mask mask = 0;
    for (auto c : picks) mask |= 1u << c;
    const bool failed = rng.chance(0.3);
    pc.join(mask, failed);
    m.append_row(next++, {picks.begin(), picks.end()});
    if (failed) m.mark_failed(next - 1);
  }
  const auto fg = build_flow_graph(m);
  EXPECT_EQ(pc.total_defect(d), exact_total_defect(fg, d));
}

}  // namespace
}  // namespace ncast
