// End-to-end integration tests: the full stack working together — protocol
// churn, packet-level coding, file distribution, and Lemma 1's
// leave-is-as-if-never-joined property.

#include <gtest/gtest.h>

#include "coding/file_codec.hpp"
#include "coding/recoder.hpp"
#include "overlay/curtain_server.hpp"
#include "overlay/defect.hpp"
#include "overlay/flow_graph.hpp"
#include "overlay/polymatroid.hpp"
#include "sim/broadcast.hpp"
#include "sim/churn.hpp"

namespace ncast {
namespace {

using namespace overlay;

TEST(Integration, ChurnThenBroadcastDecodes) {
  // Run the membership protocol under churn, then broadcast over whatever
  // overlay it produced, with still-tagged failures acting offline.
  sim::ChurnConfig cfg;
  cfg.arrival_rate = 8.0;
  cfg.mean_lifetime = 40.0;
  cfg.failure_fraction = 0.2;
  cfg.horizon = 40.0;
  CurtainServer server(12, 3, Rng(0));
  sim::run_churn(12, 3, InsertPolicy::kAppend, cfg, 77, &server);
  ASSERT_GT(server.matrix().working_count(), 10u);

  sim::BroadcastConfig bc;
  bc.generation_size = 6;
  bc.symbols = 8;
  bc.seed = 78;
  const auto report = sim::simulate_broadcast(server.matrix(), bc);
  // Everyone with full min-cut decodes; nobody is corrupted.
  for (const auto& o : report.outcomes) {
    if (o.max_flow >= 3) {
      EXPECT_TRUE(o.decoded);
    }
    EXPECT_FALSE(o.corrupted);
  }
}

TEST(Integration, FileDistributionThroughRelayChain) {
  // A 4 KiB "file" crosses three recoding relays and arrives intact —
  // the Avalanche-style download path.
  Rng rng(1);
  std::vector<std::uint8_t> file(4096);
  for (auto& b : file) b = static_cast<std::uint8_t>(rng.below(256));

  coding::FileEncoder encoder(file, 16, 64);  // 1 KiB generations
  coding::FileDecoder decoder(encoder.plan());

  std::vector<coding::Recoder<gf::Gf256>> relays;
  const auto gens = encoder.generations();
  // One relay pipeline per generation (relays are per-generation objects).
  for (std::size_t g = 0; g < gens; ++g) {
    // Feed enough packets for the relay to hold full rank, then let the
    // decoder drink from the relay only.
    coding::Recoder<gf::Gf256> relay(static_cast<std::uint32_t>(g), 16, 64);
    while (!relay.complete()) relay.absorb(encoder.emit(g, rng));
    while (decoder.decoder(g).rank() < 16) {
      const auto p = relay.emit(rng);
      ASSERT_TRUE(p.has_value());
      decoder.absorb(*p);
    }
  }
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.data(), file);
}

TEST(Integration, Lemma1LeaveIsDistributionNeutral) {
  // Lemma 1: after a graceful leave, the network is distributed as if the
  // node never joined. Deterministically: join+leave must restore the exact
  // matrix, and connectivity of everyone else must be untouched.
  CurtainServer server(10, 3, Rng(4));
  for (int i = 0; i < 30; ++i) server.join();
  const auto before_edges = server.matrix().edges();

  const auto t = server.join();
  server.leave(t.node);
  const auto after_edges = server.matrix().edges();

  ASSERT_EQ(before_edges.size(), after_edges.size());
  for (std::size_t i = 0; i < before_edges.size(); ++i) {
    EXPECT_EQ(before_edges[i].from, after_edges[i].from);
    EXPECT_EQ(before_edges[i].to, after_edges[i].to);
    EXPECT_EQ(before_edges[i].column, after_edges[i].column);
  }
}

TEST(Integration, RepairContainsFailureImpact) {
  // Fail 5 nodes in a 100-node overlay, repair them, and verify the overlay
  // is exactly as healthy as one where those nodes never existed: zero
  // defect, full connectivity.
  CurtainServer server(16, 4, Rng(5));
  for (int i = 0; i < 100; ++i) server.join();
  for (NodeId n : {10u, 30u, 50u, 70u, 90u}) {
    server.report_failure(n);
    server.repair(n);
  }
  const auto fg = build_flow_graph(server.matrix());
  for (NodeId n : server.matrix().nodes_in_order()) {
    EXPECT_EQ(node_connectivity(fg, n), 4);
  }
  Rng rng(6);
  EXPECT_DOUBLE_EQ(sampled_mean_defect(fg, 4, 200, rng), 0.0);
}

TEST(Integration, PolymatroidPredictsServerJoinExperience) {
  // Drive a CurtainServer and a PolymatroidCurtain with the same thread
  // choices; the polymatroid's reported arrival connectivity must equal the
  // explicit overlay's.
  const std::uint32_t k = 8, d = 2;
  ThreadMatrix m(k);
  PolymatroidCurtain pc(k);
  Rng rng(7);
  NodeId next = 0;
  for (int i = 0; i < 50; ++i) {
    const auto picks = rng.sample_without_replacement(k, d);
    PolymatroidCurtain::Mask mask = 0;
    for (auto c : picks) mask |= 1u << c;
    const bool failed = rng.chance(0.2);

    const auto fg = build_flow_graph(m);
    const auto expected =
        tuple_connectivity(fg, {picks.begin(), picks.end()});
    EXPECT_EQ(static_cast<std::int64_t>(pc.join(mask, failed)), expected);
    m.append_row(next++, {picks.begin(), picks.end()});
    if (failed) m.mark_failed(next - 1);
  }
}

TEST(Integration, HeterogeneousDegreesCoexist) {
  // Section 5: users with different bandwidths. DSL users (d=2) and T1
  // users (d=6) share the curtain; each gets its own degree's connectivity.
  CurtainServer server(16, 2, Rng(8));
  std::vector<NodeId> dsl, t1;
  for (int i = 0; i < 30; ++i) {
    dsl.push_back(server.join(2u).node);
    t1.push_back(server.join(6u).node);
  }
  const auto fg = build_flow_graph(server.matrix());
  for (NodeId n : dsl) EXPECT_EQ(node_connectivity(fg, n), 2);
  for (NodeId n : t1) EXPECT_EQ(node_connectivity(fg, n), 6);
}

TEST(Integration, CongestionOffloadKeepsOthersWhole) {
  CurtainServer server(8, 3, Rng(9));
  for (int i = 0; i < 40; ++i) server.join();
  // Node 20 sheds one thread, later restores it.
  server.congestion_offload(20);
  {
    const auto fg = build_flow_graph(server.matrix());
    EXPECT_EQ(node_connectivity(fg, 20), 2);
    // Everyone else unaffected.
    for (NodeId n : server.matrix().nodes_in_order()) {
      if (n != 20) {
        EXPECT_EQ(node_connectivity(fg, n), 3) << "node " << n;
      }
    }
  }
  server.congestion_restore(20);
  const auto fg = build_flow_graph(server.matrix());
  EXPECT_EQ(node_connectivity(fg, 20), 3);
}

}  // namespace
}  // namespace ncast
