// Directed multigraph primitive tests.

#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace ncast {
namespace {

using graph::Digraph;

TEST(Digraph, VertexAndEdgeAccounting) {
  Digraph g(2);
  EXPECT_EQ(g.vertex_count(), 2u);
  const auto v = g.add_vertex();
  EXPECT_EQ(v, 2u);
  const auto e = g.add_edge(0, 2);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).from, 0u);
  EXPECT_EQ(g.edge(e).to, 2u);
  EXPECT_TRUE(g.edge(e).alive);
}

TEST(Digraph, AddEdgeValidation) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(g.add_edge(5, 0), std::out_of_range);
}

TEST(Digraph, ParallelEdgesAllowed) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(1), 2u);
}

TEST(Digraph, RemoveEdgeAffectsDegrees) {
  Digraph g(2);
  const auto e = g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.remove_edge(e);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_FALSE(g.edge(e).alive);
}

TEST(Digraph, SelfLoopCounts) {
  Digraph g(1);
  g.add_edge(0, 0);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(0), 1u);
}

TEST(BfsDepths, PathGraph) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto d = bfs_depths(g, 0);
  EXPECT_EQ(d, (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(BfsDepths, UnreachableIsMinusOne) {
  Digraph g(3);
  g.add_edge(0, 1);
  const auto d = bfs_depths(g, 0);
  EXPECT_EQ(d[2], -1);
}

TEST(BfsDepths, DeadEdgesIgnored) {
  Digraph g(3);
  const auto e = g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.remove_edge(e);
  const auto d = bfs_depths(g, 0);
  EXPECT_EQ(d[1], -1);
  EXPECT_EQ(d[2], -1);
}

TEST(BfsDepths, ShortestPathWins) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);  // shortcut
  EXPECT_EQ(bfs_depths(g, 0)[3], 1);
}

TEST(Topological, OrderRespectsEdges) {
  Digraph g(5);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  g.add_edge(1, 4);
  g.add_edge(0, 3);
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), 5u);
  std::vector<std::size_t> pos(5);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[2], pos[1]);
  EXPECT_LT(pos[1], pos[4]);
  EXPECT_LT(pos[0], pos[3]);
}

TEST(Topological, CycleDetected) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_THROW(topological_order(g), std::logic_error);
  EXPECT_FALSE(is_acyclic(g));
}

TEST(Topological, DeadEdgeBreaksCycle) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto back = g.add_edge(2, 0);
  EXPECT_FALSE(is_acyclic(g));
  g.remove_edge(back);
  EXPECT_TRUE(is_acyclic(g));
}

}  // namespace
}  // namespace ncast
