// Defect measurement tests (exact enumeration and Monte-Carlo sampling on
// the explicit graph).

#include "overlay/defect.hpp"

#include <gtest/gtest.h>

namespace ncast {
namespace {

using namespace overlay;

// Local C(k,d) helper.
std::uint64_t binomial(std::uint32_t k, std::uint32_t d) {
  std::uint64_t num = 1;
  for (std::uint32_t i = 0; i < d; ++i) num = num * (k - i) / (i + 1);
  return num;
}

ThreadMatrix build_random_curtain(std::uint32_t k, std::uint32_t d,
                                  int n, double p, Rng& rng) {
  ThreadMatrix m(k);
  for (int i = 0; i < n; ++i) {
    const auto picks = rng.sample_without_replacement(k, d);
    m.append_row(static_cast<NodeId>(i), {picks.begin(), picks.end()});
    if (rng.chance(p)) m.mark_failed(static_cast<NodeId>(i));
  }
  return m;
}

TEST(Defect, FailureFreeIsZero) {
  Rng rng(1);
  const auto m = build_random_curtain(6, 2, 50, 0.0, rng);
  const auto fg = build_flow_graph(m);
  EXPECT_EQ(exact_total_defect(fg, 2), 0u);
  EXPECT_EQ(exact_total_defect(fg, 3), 0u);
  EXPECT_DOUBLE_EQ(sampled_mean_defect(fg, 2, 100, rng), 0.0);
}

TEST(Defect, AllFailedIsMaximal) {
  Rng rng(2);
  ThreadMatrix m(4);
  // One failed node takes all threads: every tuple is completely dead.
  m.append_row(0, {0, 1, 2, 3});
  m.mark_failed(0);
  const auto fg = build_flow_graph(m);
  // C(4,2)=6 tuples, each with defect 2.
  EXPECT_EQ(exact_total_defect(fg, 2), 12u);
  EXPECT_DOUBLE_EQ(sampled_mean_defect(fg, 2, 50, rng), 2.0);
}

TEST(Defect, SampledConvergesToExact) {
  Rng rng(3);
  const auto m = build_random_curtain(8, 2, 60, 0.25, rng);
  const auto fg = build_flow_graph(m);
  const double exact = static_cast<double>(exact_total_defect(fg, 2)) /
                       static_cast<double>(binomial(8, 2));
  const double sampled = sampled_mean_defect(fg, 2, 4000, rng);
  EXPECT_NEAR(sampled, exact, 0.08);
}

TEST(Defect, Validation) {
  ThreadMatrix m(4);
  const auto fg = build_flow_graph(m);
  EXPECT_THROW(exact_total_defect(fg, 0), std::invalid_argument);
  EXPECT_THROW(exact_total_defect(fg, 5), std::invalid_argument);
  Rng rng(4);
  EXPECT_THROW(sampled_mean_defect(fg, 2, 0, rng), std::invalid_argument);
  EXPECT_THROW(sampled_mean_defect(fg, 9, 10, rng), std::invalid_argument);
}

TEST(Defect, FullTupleEqualsSystemCapacityLoss) {
  Rng rng(5);
  ThreadMatrix m(4);
  m.append_row(0, {0, 1});
  m.mark_failed(0);
  const auto fg = build_flow_graph(m);
  // d = k tuple: the whole curtain. Two dead ends -> defect 2.
  EXPECT_EQ(exact_total_defect(fg, 4), 2u);
}

}  // namespace
}  // namespace ncast
