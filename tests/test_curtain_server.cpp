// Curtain server protocol tests: hello, good-bye, repair, congestion, insert
// policies, and control-message accounting.

#include "overlay/curtain_server.hpp"

#include <gtest/gtest.h>

#include <set>

#include "overlay/flow_graph.hpp"

namespace ncast {
namespace {

using namespace overlay;

TEST(CurtainServer, ConstructionValidation) {
  EXPECT_THROW(CurtainServer(4, 0, Rng(1)), std::invalid_argument);
  EXPECT_THROW(CurtainServer(4, 5, Rng(1)), std::invalid_argument);
  EXPECT_NO_THROW(CurtainServer(4, 4, Rng(1)));
}

TEST(CurtainServer, JoinCreatesValidRow) {
  CurtainServer server(8, 3, Rng(2));
  const auto t = server.join();
  EXPECT_EQ(t.threads.size(), 3u);
  std::set<ColumnId> distinct(t.threads.begin(), t.threads.end());
  EXPECT_EQ(distinct.size(), 3u);
  EXPECT_TRUE(server.matrix().contains(t.node));
  EXPECT_EQ(server.matrix().row(t.node).threads.size(), 3u);
  // First joiner's parents: only the server.
  EXPECT_EQ(t.parents, (std::vector<NodeId>{kServerNode}));
}

TEST(CurtainServer, JoinWithExplicitDegree) {
  CurtainServer server(8, 3, Rng(3));
  const auto t = server.join(5u);
  EXPECT_EQ(t.threads.size(), 5u);
  EXPECT_THROW(server.join(0u), std::invalid_argument);
  EXPECT_THROW(server.join(9u), std::invalid_argument);
}

TEST(CurtainServer, NodeIdsAreUniqueAndSequential) {
  CurtainServer server(4, 2, Rng(4));
  EXPECT_EQ(server.join().node, 0u);
  EXPECT_EQ(server.join().node, 1u);
  server.leave(0);
  EXPECT_EQ(server.join().node, 2u);  // ids never reused
}

TEST(CurtainServer, AppendPolicyKeepsArrivalOrder) {
  CurtainServer server(4, 2, Rng(5), InsertPolicy::kAppend);
  for (int i = 0; i < 10; ++i) server.join();
  const auto order = server.matrix().nodes_in_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<NodeId>(i));
  }
}

TEST(CurtainServer, RandomPolicyShufflesArrivalOrder) {
  CurtainServer server(4, 2, Rng(6), InsertPolicy::kRandomPosition);
  for (int i = 0; i < 50; ++i) server.join();
  const auto order = server.matrix().nodes_in_order();
  bool out_of_order = false;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] != static_cast<NodeId>(i)) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
  EXPECT_TRUE(server.matrix().check_invariants());
}

TEST(CurtainServer, LeaveDeletesRow) {
  CurtainServer server(4, 2, Rng(7));
  const auto a = server.join();
  const auto b = server.join();
  server.leave(a.node);
  EXPECT_FALSE(server.matrix().contains(a.node));
  EXPECT_TRUE(server.matrix().contains(b.node));
  EXPECT_THROW(server.leave(a.node), std::out_of_range);
}

TEST(CurtainServer, FailureAndRepairLifecycle) {
  CurtainServer server(4, 2, Rng(8));
  const auto t = server.join();
  server.report_failure(t.node);
  EXPECT_TRUE(server.matrix().row(t.node).failed);
  server.report_failure(t.node);  // duplicate complaint is idempotent
  EXPECT_EQ(server.stats().failures_reported, 1u);
  server.repair(t.node);
  EXPECT_FALSE(server.matrix().contains(t.node));
  EXPECT_EQ(server.stats().repairs, 1u);
}

TEST(CurtainServer, RepairRequiresFailedTag) {
  CurtainServer server(4, 2, Rng(9));
  const auto t = server.join();
  EXPECT_THROW(server.repair(t.node), std::logic_error);
}

TEST(CurtainServer, RepairRestoresConnectivity) {
  CurtainServer server(4, 2, Rng(10));
  std::vector<NodeId> nodes;
  for (int i = 0; i < 20; ++i) nodes.push_back(server.join().node);
  // Fail an early node, then repair; everyone left must be back at degree 2.
  server.report_failure(nodes[2]);
  server.repair(nodes[2]);
  const auto fg = build_flow_graph(server.matrix());
  for (NodeId n : server.matrix().nodes_in_order()) {
    EXPECT_EQ(node_connectivity(fg, n), 2) << "node " << n;
  }
}

TEST(CurtainServer, MessageAccounting) {
  CurtainServer server(8, 3, Rng(11));
  const auto t = server.join();
  // Join: request + response + one notification per parent.
  EXPECT_EQ(server.stats().control_messages, 2 + t.parents.size());
  const auto before = server.stats().control_messages;
  server.leave(t.node);
  EXPECT_GT(server.stats().control_messages, before);
  EXPECT_EQ(server.stats().joins, 1u);
  EXPECT_EQ(server.stats().graceful_leaves, 1u);
}

TEST(CurtainServer, MessagesPerEventAreBounded) {
  // The scalability claim: O(d) control messages per membership event,
  // independent of N.
  CurtainServer server(16, 4, Rng(12));
  for (int i = 0; i < 200; ++i) server.join();
  const auto before = server.stats().control_messages;
  server.join();
  const auto join_cost = server.stats().control_messages - before;
  EXPECT_LE(join_cost, 2u + 4u);
  server.report_failure(100);
  server.repair(100);
  const auto repair_cost =
      server.stats().control_messages - before - join_cost;
  // complaints (<= d children) + redirects (<= d parents + d children).
  EXPECT_LE(repair_cost, 3u * 4u);
}

TEST(CurtainServer, CongestionOffloadAndRestore) {
  CurtainServer server(8, 3, Rng(13));
  const auto t = server.join();
  const auto dropped = server.congestion_offload(t.node);
  ASSERT_TRUE(dropped.has_value());
  EXPECT_EQ(server.matrix().row(t.node).threads.size(), 2u);
  const auto restored = server.congestion_restore(t.node);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(server.matrix().row(t.node).threads.size(), 3u);
  EXPECT_EQ(server.stats().congestion_offloads, 1u);
  EXPECT_EQ(server.stats().congestion_restores, 1u);
}

TEST(CurtainServer, OffloadStopsAtDegreeOne) {
  CurtainServer server(4, 2, Rng(14));
  const auto t = server.join();
  EXPECT_TRUE(server.congestion_offload(t.node).has_value());
  EXPECT_FALSE(server.congestion_offload(t.node).has_value());
}

TEST(CurtainServer, RestoreStopsAtFullRow) {
  CurtainServer server(3, 3, Rng(15));
  const auto t = server.join();
  EXPECT_FALSE(server.congestion_restore(t.node).has_value());
}

TEST(CurtainServer, HundredsOfJoinsKeepInvariants) {
  CurtainServer server(32, 4, Rng(16), InsertPolicy::kRandomPosition);
  for (int i = 0; i < 300; ++i) {
    server.join();
    if (i % 7 == 3) server.leave(static_cast<NodeId>(i));
    else if (i % 11 == 5) {
      server.report_failure(static_cast<NodeId>(i));
      server.repair(static_cast<NodeId>(i));
    }
  }
  EXPECT_TRUE(server.matrix().check_invariants());
}

}  // namespace
}  // namespace ncast
