// Shard-determinism at the protocol plane: run_scenario_sharded must
// produce the SAME report — final thread matrix, per-client outcomes,
// decoded fractions, message tallies — for every shard count and worker
// count. This is the end-to-end enforcement of the sharded kernel's
// determinism contract on the regression protocol spec (the same spec
// test_sim_determinism.cpp pins for the single-queue runner).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "coding/structure.hpp"
#include "node/protocol_scenario.hpp"
#include "overlay/thread_matrix.hpp"
#include "sim/link_model.hpp"

namespace ncast {
namespace {

using sim::LatencySpec;
using sim::LossSpec;

node::ProtocolScenarioSpec regression_spec(std::uint64_t seed) {
  node::ProtocolScenarioSpec spec;
  spec.k = 6;
  spec.default_degree = 2;
  spec.generations = 2;
  spec.generation_size = 8;
  spec.symbols = 8;
  spec.silence_timeout = 8;
  spec.seed = seed;
  spec.transport.latency = LatencySpec::uniform(0.5, 1.5);
  spec.transport.control_loss = LossSpec::bernoulli(0.15);
  spec.transport.data_loss = LossSpec::gilbert_elliott(0.05, 0.45);
  spec.faults.join_burst(1.0, 8, 1.0);
  spec.faults.crash_join_at(30.0, 1);
  spec.faults.leave_join_at(35.0, 4);
  return spec;
}

void expect_reports_equal(const node::ProtocolScenarioReport& a,
                          const node::ProtocolScenarioReport& b,
                          const char* what) {
  EXPECT_EQ(a.events_executed, b.events_executed) << what;
  EXPECT_EQ(a.messages_sent, b.messages_sent) << what;
  EXPECT_EQ(a.messages_dropped, b.messages_dropped) << what;
  EXPECT_EQ(a.control_messages, b.control_messages) << what;
  EXPECT_EQ(a.data_messages, b.data_messages) << what;
  EXPECT_EQ(a.control_dropped, b.control_dropped) << what;
  EXPECT_EQ(a.control_bytes, b.control_bytes) << what;
  EXPECT_EQ(a.data_bytes, b.data_bytes) << what;
  // max_in_flight is deliberately NOT compared: it samples instantaneous
  // concurrency mid-window, and intra-window cross-lane execution order is
  // outside the determinism contract (see protocol_scenario.hpp).
  EXPECT_GT(b.max_in_flight, 0u) << what;
  EXPECT_EQ(a.repairs_done, b.repairs_done) << what;
  EXPECT_EQ(a.last_repair_time, b.last_repair_time) << what;
  // The server's final matrix: identical curtain order AND identical
  // per-row column sets.
  const auto order_a = a.matrix.nodes_in_order();
  ASSERT_EQ(order_a, b.matrix.nodes_in_order()) << what;
  for (overlay::NodeId n : order_a) {
    const auto row_a = a.matrix.row(n);
    const auto row_b = b.matrix.row(n);
    EXPECT_TRUE(row_a.threads == row_b.threads.to_vector())
        << what << " node " << n;
    EXPECT_EQ(row_a.failed, row_b.failed) << what << " node " << n;
  }
  EXPECT_EQ(a.decoded_fraction(), b.decoded_fraction()) << what;
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << what;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].address, b.outcomes[i].address) << what;
    EXPECT_EQ(a.outcomes[i].joined, b.outcomes[i].joined) << what;
    EXPECT_EQ(a.outcomes[i].crashed, b.outcomes[i].crashed) << what;
    EXPECT_EQ(a.outcomes[i].departed, b.outcomes[i].departed) << what;
    EXPECT_EQ(a.outcomes[i].decoded, b.outcomes[i].decoded) << what;
    EXPECT_EQ(a.outcomes[i].join_latency, b.outcomes[i].join_latency) << what;
    EXPECT_EQ(a.outcomes[i].decode_time, b.outcomes[i].decode_time) << what;
    EXPECT_EQ(a.outcomes[i].join_retries, b.outcomes[i].join_retries) << what;
    EXPECT_EQ(a.outcomes[i].complaints, b.outcomes[i].complaints) << what;
  }
}

// N-shard == 1-shard, bit for bit, on the regression spec — including the
// crash (silence-complaint repair) and leave paths.
TEST(ShardedScenario, ReportInvariantAcrossShardCounts) {
  const auto spec = regression_spec(19);
  const auto baseline = node::run_scenario_sharded(spec, 1, 0);
  // The run must be a live protocol exchange, not a vacuous pass.
  EXPECT_GT(baseline.messages_sent, 0u);
  EXPECT_GT(baseline.data_messages, 0u);
  EXPECT_GT(baseline.decoded_fraction(), 0.0);
  EXPECT_EQ(baseline.outcomes.size(), 8u);
  for (std::uint32_t shards : {2u, 4u, 8u}) {
    const auto r = node::run_scenario_sharded(spec, shards, 0);
    expect_reports_equal(baseline, r,
                         (std::string("shards=") + std::to_string(shards)).c_str());
  }
}

// Worker threads change only the wall clock, never the report.
TEST(ShardedScenario, ReportInvariantAcrossWorkerCounts) {
  const auto spec = regression_spec(19);
  const auto baseline = node::run_scenario_sharded(spec, 4, 0);
  for (std::uint32_t workers : {1u, 2u}) {
    const auto r = node::run_scenario_sharded(spec, 4, workers);
    expect_reports_equal(
        baseline, r,
        (std::string("workers=") + std::to_string(workers)).c_str());
  }
}

// A second seed, exercised the same way (regression seeds, plural).
TEST(ShardedScenario, ReportInvariantOnSecondSeed) {
  const auto spec = regression_spec(7);
  const auto baseline = node::run_scenario_sharded(spec, 1, 0);
  const auto sharded = node::run_scenario_sharded(spec, 8, 2);
  expect_reports_equal(baseline, sharded, "seed=7 shards=8 workers=2");
}

// The sharded runner is itself reproducible run over run (no hidden state
// leaks between engines or transports).
TEST(ShardedScenario, RepeatRunsReproduce) {
  const auto spec = regression_spec(19);
  const auto a = node::run_scenario_sharded(spec, 4, 2);
  const auto b = node::run_scenario_sharded(spec, 4, 2);
  expect_reports_equal(a, b, "repeat");
}

// Structured streams ride the same determinism contract: the regression
// spec with a banded (w = g/8, wrapping) and an overlapped structure must
// produce shard- and worker-invariant reports too. The banded data plane
// mixes v2 strips (server-direct) with densified v1 relay rows, so this
// also pins the mixed-framing byte accounting (data_bytes) across lanes.
TEST(ShardedScenario, StructuredReportsInvariantAcrossShardsAndWorkers) {
  auto banded = regression_spec(19);
  banded.generation_size = 16;
  banded.structure = coding::StructureSpec::banded(2, true);  // w = g/8
  auto overlapped = regression_spec(19);
  overlapped.generation_size = 16;
  overlapped.structure = coding::StructureSpec::overlapping(6, 2);

  const struct {
    const char* name;
    const node::ProtocolScenarioSpec* spec;
  } lanes[] = {{"banded", &banded}, {"overlapped", &overlapped}};
  for (const auto& lane : lanes) {
    const auto baseline = node::run_scenario_sharded(*lane.spec, 1, 0);
    EXPECT_GT(baseline.data_messages, 0u) << lane.name;
    EXPECT_GT(baseline.data_bytes, 0u) << lane.name;
    for (std::uint32_t shards : {4u, 8u}) {
      const auto r = node::run_scenario_sharded(*lane.spec, shards, 2);
      expect_reports_equal(
          baseline, r,
          (std::string(lane.name) + " shards=" + std::to_string(shards))
              .c_str());
    }
  }
}

// The sharded runner agrees with run_scenario on protocol-level outcomes
// under a LOSSLESS transport: with no random draws consumed, both planes
// see the same message timeline shape, so membership must converge to the
// same place. (Under loss the two runners consume different RNG streams by
// design — see protocol_scenario.hpp.)
TEST(ShardedScenario, LosslessRunMatchesSingleQueueRunnerOutcomes) {
  node::ProtocolScenarioSpec spec;
  spec.k = 4;
  spec.default_degree = 2;
  spec.generations = 1;
  spec.generation_size = 4;
  spec.symbols = 4;
  spec.seed = 5;
  spec.transport.latency = LatencySpec::fixed_delay(0.7);
  spec.initial_clients = 6;

  const auto single = node::run_scenario(spec);
  const auto sharded = node::run_scenario_sharded(spec, 4, 0);
  EXPECT_EQ(single.matrix.nodes_in_order(), sharded.matrix.nodes_in_order());
  ASSERT_EQ(single.outcomes.size(), sharded.outcomes.size());
  for (std::size_t i = 0; i < single.outcomes.size(); ++i) {
    EXPECT_EQ(single.outcomes[i].address, sharded.outcomes[i].address);
    EXPECT_EQ(single.outcomes[i].joined, sharded.outcomes[i].joined);
    EXPECT_EQ(single.outcomes[i].decoded, sharded.outcomes[i].decoded);
  }
  EXPECT_EQ(single.decoded_fraction(), sharded.decoded_fraction());
}

// Cross-runner agreement holds per structure as well: the lossless spec
// run banded and overlapped must decode everywhere on both runners.
TEST(ShardedScenario, LosslessStructuredRunsMatchAcrossRunners) {
  const coding::StructureSpec structures[] = {
      coding::StructureSpec::banded(2, true),
      coding::StructureSpec::overlapping(6, 2),
  };
  for (const auto& structure : structures) {
    node::ProtocolScenarioSpec spec;
    spec.k = 4;
    spec.default_degree = 2;
    spec.generations = 1;
    spec.generation_size = 16;
    spec.symbols = 4;
    spec.seed = 5;
    spec.structure = structure;
    spec.transport.latency = LatencySpec::fixed_delay(0.7);
    spec.initial_clients = 6;

    const auto single = node::run_scenario(spec);
    const auto sharded = node::run_scenario_sharded(spec, 4, 2);
    EXPECT_EQ(single.matrix.nodes_in_order(), sharded.matrix.nodes_in_order());
    ASSERT_EQ(single.outcomes.size(), sharded.outcomes.size());
    for (std::size_t i = 0; i < single.outcomes.size(); ++i) {
      EXPECT_EQ(single.outcomes[i].joined, sharded.outcomes[i].joined);
      EXPECT_EQ(single.outcomes[i].decoded, sharded.outcomes[i].decoded);
    }
    EXPECT_EQ(single.decoded_fraction(), 1.0);
    EXPECT_EQ(sharded.decoded_fraction(), 1.0);
  }
}

}  // namespace
}  // namespace ncast
