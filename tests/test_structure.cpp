// Generation-structure geometry: factories, validation, class/band layout,
// and the never-throwing packet-admission predicate. Pure geometry — no field
// arithmetic — so these tests pin the invariants every structured codec
// component (encoder placement, wire validation, decoder routing) builds on.

#include "coding/structure.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ncast {
namespace {

using coding::GenerationStructure;
using coding::StructureKind;

TEST(Structure, DenseFactory) {
  const auto s = GenerationStructure::dense(16);
  EXPECT_EQ(s.kind, StructureKind::kDense);
  EXPECT_EQ(s.g, 16u);
  EXPECT_EQ(s.band_width, 16u);
  EXPECT_FALSE(s.wrap);
  EXPECT_EQ(s.overlap, 0u);
  EXPECT_EQ(s.num_classes(), 1u);
  EXPECT_EQ(s.offsets(), 1u);
}

TEST(Structure, BandedFactory) {
  const auto s = GenerationStructure::banded(32, 8);
  EXPECT_EQ(s.kind, StructureKind::kBanded);
  EXPECT_EQ(s.band_width, 8u);
  EXPECT_FALSE(s.wrap);
  EXPECT_EQ(s.offsets(), 25u);  // g - w + 1 legal starts

  const auto w = GenerationStructure::banded(32, 8, true);
  EXPECT_TRUE(w.wrap);
  EXPECT_EQ(w.offsets(), 32u);  // every start is legal when bands wrap
}

TEST(Structure, FullWidthBandNormalizesWrapAway) {
  // A band as wide as the generation is dense in all but name; wrap would be
  // meaningless, so the factory drops it.
  const auto s = GenerationStructure::banded(16, 16, true);
  EXPECT_FALSE(s.wrap);
  EXPECT_EQ(s.offsets(), 1u);
}

TEST(Structure, OverlappingFactory) {
  const auto s = GenerationStructure::overlapping(32, 8, 2);
  EXPECT_EQ(s.kind, StructureKind::kOverlapped);
  EXPECT_EQ(s.band_width, 8u);
  EXPECT_EQ(s.overlap, 2u);
  EXPECT_EQ(s.stride(), 6u);
  // Starts 0, 6, 12, 18, 24 cover [0, 32) with width-8 classes.
  EXPECT_EQ(s.num_classes(), 5u);
}

TEST(Structure, ValidationThrows) {
  EXPECT_THROW(GenerationStructure::dense(0), std::invalid_argument);
  EXPECT_THROW(GenerationStructure::banded(16, 0), std::invalid_argument);
  EXPECT_THROW(GenerationStructure::banded(16, 17), std::invalid_argument);
  EXPECT_THROW(GenerationStructure::overlapping(16, 4, 4),
               std::invalid_argument);
  EXPECT_THROW(GenerationStructure::overlapping(16, 4, 5),
               std::invalid_argument);

  // Hand-built nonsense the factories can't produce.
  GenerationStructure s = GenerationStructure::dense(16);
  s.band_width = 8;  // dense requires width == g
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = GenerationStructure::dense(16);
  s.overlap = 2;  // overlap without classes
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = GenerationStructure::dense(16);
  s.wrap = true;  // wrap without bands
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Structure, ClassGeometryCoversGeneration) {
  for (std::size_t g : {8u, 17u, 32u, 33u, 64u}) {
    for (std::size_t c : {4u, 5u, 8u}) {
      if (c > g) continue;
      for (std::size_t v : {0u, 1u, 3u}) {
        if (v >= c) continue;
        const auto s = GenerationStructure::overlapping(g, c, v);
        const std::size_t n = s.num_classes();
        // Classes tile [0, g): consecutive begins advance by the stride, the
        // last class ends exactly at g, and every class keeps more than
        // `overlap` packets (no class is a subset of its neighbor).
        EXPECT_EQ(s.class_begin(0), 0u);
        for (std::size_t k = 0; k + 1 < n; ++k) {
          EXPECT_EQ(s.class_begin(k + 1), s.class_begin(k) + s.stride());
          EXPECT_EQ(s.class_width(k), c);
        }
        EXPECT_EQ(s.class_begin(n - 1) + s.class_width(n - 1), g)
            << "g=" << g << " c=" << c << " v=" << v;
        EXPECT_GT(s.class_width(n - 1), v);
      }
    }
  }
}

TEST(Structure, FirstAndLastClassOfEveryColumn) {
  const auto s = GenerationStructure::overlapping(32, 8, 2);
  for (std::size_t j = 0; j < s.g; ++j) {
    const std::size_t first = s.first_class_of(j);
    const std::size_t last = s.last_class_of(j);
    ASSERT_LE(first, last) << "j=" << j;
    // Exhaustive cross-check: class k owns j iff begin <= j < begin + width.
    for (std::size_t k = 0; k < s.num_classes(); ++k) {
      const bool owns =
          s.class_begin(k) <= j && j < s.class_begin(k) + s.class_width(k);
      EXPECT_EQ(owns, first <= k && k <= last) << "j=" << j << " k=" << k;
    }
  }
}

TEST(Structure, MatchesPacketDense) {
  const auto s = GenerationStructure::dense(16);
  EXPECT_TRUE(s.matches_packet(0, 16, 0));
  EXPECT_FALSE(s.matches_packet(1, 16, 0));
  EXPECT_FALSE(s.matches_packet(0, 15, 0));
  EXPECT_FALSE(s.matches_packet(0, 16, 1));
}

TEST(Structure, MatchesPacketBanded) {
  const auto s = GenerationStructure::banded(16, 4);
  EXPECT_TRUE(s.matches_packet(0, 4, 0));
  EXPECT_TRUE(s.matches_packet(12, 4, 0));  // last legal non-wrap start
  EXPECT_FALSE(s.matches_packet(13, 4, 0));  // would run past g
  EXPECT_FALSE(s.matches_packet(16, 4, 0));  // offset out of range
  EXPECT_FALSE(s.matches_packet(0, 3, 0));   // wrong width
  EXPECT_FALSE(s.matches_packet(0, 4, 1));   // bands carry no class id

  const auto w = GenerationStructure::banded(16, 4, true);
  EXPECT_TRUE(w.matches_packet(13, 4, 0));  // wraps around the end
  EXPECT_TRUE(w.matches_packet(15, 4, 0));
  EXPECT_FALSE(w.matches_packet(16, 4, 0));
}

TEST(Structure, MatchesPacketOverlapped) {
  const auto s = GenerationStructure::overlapping(32, 8, 2);
  for (std::size_t k = 0; k < s.num_classes(); ++k) {
    EXPECT_TRUE(s.matches_packet(s.class_begin(k), s.class_width(k), k));
  }
  EXPECT_FALSE(s.matches_packet(0, 8, s.num_classes()));  // class out of range
  EXPECT_FALSE(s.matches_packet(1, 8, 0));                // wrong offset
  EXPECT_FALSE(s.matches_packet(0, 7, 0));                // wrong width
  EXPECT_FALSE(s.matches_packet(6, 8, 0));  // class 1's placement, class 0's id
}

TEST(Structure, EqualityAndNames) {
  EXPECT_EQ(GenerationStructure::banded(32, 8),
            GenerationStructure::banded(32, 8));
  EXPECT_NE(GenerationStructure::banded(32, 8),
            GenerationStructure::banded(32, 8, true));
  EXPECT_NE(GenerationStructure::dense(16), GenerationStructure::dense(17));
  EXPECT_STREQ(coding::to_string(StructureKind::kDense), "dense");
  EXPECT_STREQ(coding::to_string(StructureKind::kBanded), "banded");
  EXPECT_STREQ(coding::to_string(StructureKind::kOverlapped), "overlapped");
}

}  // namespace
}  // namespace ncast
