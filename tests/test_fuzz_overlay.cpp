// Property/fuzz suite: long random protocol-operation sequences against the
// curtain server, with structural invariants checked continuously, plus
// consistency checks on the polymatroid defect decomposition.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "overlay/curtain_server.hpp"
#include "overlay/defect.hpp"
#include "overlay/flow_graph.hpp"
#include "overlay/polymatroid.hpp"

namespace ncast {
namespace {

using namespace overlay;

class ServerFuzz : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ServerFuzz, RandomOperationSequencesKeepInvariants) {
  const auto [k, d, seed] = GetParam();
  CurtainServer server(static_cast<std::uint32_t>(k),
                       static_cast<std::uint32_t>(d), Rng(seed),
                       seed % 2 == 0 ? InsertPolicy::kAppend
                                     : InsertPolicy::kRandomPosition);
  Rng rng(static_cast<std::uint64_t>(seed) * 77 + 1);

  std::vector<NodeId> live;    // present, not failed
  std::vector<NodeId> failed;  // present, failed, awaiting repair

  for (int step = 0; step < 400; ++step) {
    const auto roll = rng.below(100);
    if (roll < 45 || live.empty()) {
      // join
      live.push_back(server.join().node);
    } else if (roll < 60) {
      // graceful leave of a random live node
      const auto i = rng.below(live.size());
      server.leave(live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (roll < 75) {
      // crash
      const auto i = rng.below(live.size());
      server.report_failure(live[i]);
      failed.push_back(live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (roll < 90 && !failed.empty()) {
      // repair the oldest failure
      server.repair(failed.front());
      failed.erase(failed.begin());
    } else if (roll < 95) {
      // congestion offload (may no-op at degree 1)
      const auto i = rng.below(live.size());
      server.congestion_offload(live[i]);
    } else {
      // congestion restore (may no-op at degree k)
      const auto i = rng.below(live.size());
      server.congestion_restore(live[i]);
    }

    ASSERT_TRUE(server.matrix().check_invariants()) << "step " << step;
    ASSERT_EQ(server.matrix().failed_count(), failed.size()) << "step " << step;
    ASSERT_EQ(server.matrix().row_count(), live.size() + failed.size());
  }

  // Settle: repair everything, then every node must be at its own degree.
  for (NodeId n : failed) server.repair(n);
  const auto fg = build_flow_graph(server.matrix());
  for (NodeId n : server.matrix().nodes_in_order()) {
    const auto degree =
        static_cast<std::int64_t>(server.matrix().row(n).threads.size());
    ASSERT_EQ(node_connectivity(fg, n), degree) << "node " << n;
  }
  // And the defect must be exactly zero.
  Rng srng(static_cast<std::uint64_t>(seed) + 5);
  EXPECT_DOUBLE_EQ(
      sampled_mean_defect(fg, static_cast<std::uint32_t>(d), 100, srng), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ServerFuzz,
                         ::testing::Values(std::make_tuple(6, 2, 1),
                                           std::make_tuple(8, 3, 2),
                                           std::make_tuple(12, 4, 3),
                                           std::make_tuple(16, 2, 4),
                                           std::make_tuple(10, 5, 5),
                                           std::make_tuple(8, 3, 6),
                                           std::make_tuple(20, 6, 7),
                                           std::make_tuple(6, 6, 8),
                                           std::make_tuple(14, 2, 9),
                                           std::make_tuple(9, 4, 10)));

TEST(ServerFuzz, ParentChildRelationsAreMutual) {
  CurtainServer server(10, 3, Rng(7));
  for (int i = 0; i < 60; ++i) server.join();
  const auto& m = server.matrix();
  for (NodeId n : m.nodes_in_order()) {
    for (NodeId p : m.parents(n)) {
      if (p == kServerNode) continue;
      const auto kids = m.children(p);
      EXPECT_NE(std::find(kids.begin(), kids.end(), n), kids.end())
          << p << " should list " << n << " as child";
    }
    for (NodeId c : m.children(n)) {
      const auto parents = m.parents(c);
      EXPECT_NE(std::find(parents.begin(), parents.end(), n), parents.end())
          << c << " should list " << n << " as parent";
    }
  }
}

TEST(ServerFuzz, EdgesMatchParentsAndChildren) {
  CurtainServer server(8, 2, Rng(8), InsertPolicy::kRandomPosition);
  for (int i = 0; i < 40; ++i) server.join();
  const auto& m = server.matrix();
  // Every derived edge's endpoints must agree with parents()/children().
  for (const auto& e : m.edges()) {
    if (e.from == kServerNode) continue;
    const auto kids = m.children(e.from);
    EXPECT_NE(std::find(kids.begin(), kids.end(), e.to), kids.end());
  }
}

// ---- Polymatroid defect decomposition consistency ----

TEST(DefectHistogram, SumsAndMomentsMatch) {
  const std::uint32_t k = 10, d = 3;
  overlay::PolymatroidCurtain pc(k);
  Rng rng(9);
  for (int step = 0; step < 300; ++step) {
    pc.join_random(d, 0.2, rng);
    if (step % 25 != 0) continue;
    const auto hist = pc.defect_histogram(d);
    ASSERT_EQ(hist.size(), d + 1u);
    std::uint64_t total = 0, weighted = 0, defective = 0;
    for (std::uint32_t j = 0; j <= d; ++j) {
      total += hist[j];
      weighted += j * hist[j];
      if (j > 0) defective += hist[j];
    }
    EXPECT_EQ(total, overlay::PolymatroidCurtain::tuple_count(k, d));
    EXPECT_EQ(weighted, pc.total_defect(d));
    EXPECT_EQ(defective, pc.defective_tuples(d));
  }
}

TEST(DefectHistogram, MatchesExplicitEnumeration) {
  const std::uint32_t k = 6, d = 2;
  overlay::PolymatroidCurtain pc(k);
  ThreadMatrix m(k);
  Rng rng(10);
  NodeId next = 0;
  for (int step = 0; step < 30; ++step) {
    const auto picks = rng.sample_without_replacement(k, d);
    PolymatroidCurtain::Mask mask = 0;
    for (auto c : picks) mask |= 1u << c;
    const bool failure = rng.chance(0.3);
    pc.join(mask, failure);
    m.append_row(next++, {picks.begin(), picks.end()});
    if (failure) m.mark_failed(next - 1);
  }
  const auto fg = build_flow_graph(m);
  const auto hist = pc.defect_histogram(d);
  // Enumerate tuple defects explicitly.
  std::vector<std::uint64_t> explicit_hist(d + 1, 0);
  for (ColumnId a = 0; a < k; ++a) {
    for (ColumnId b = a + 1; b < k; ++b) {
      const auto conn = tuple_connectivity(fg, {a, b});
      ++explicit_hist[d - static_cast<std::uint64_t>(conn)];
    }
  }
  EXPECT_EQ(hist, explicit_hist);
}

TEST(DefectHistogram, Validation) {
  overlay::PolymatroidCurtain pc(6);
  EXPECT_THROW(pc.defect_histogram(0), std::invalid_argument);
  EXPECT_THROW(pc.defect_histogram(7), std::invalid_argument);
}

}  // namespace
}  // namespace ncast
