// RLNC codec tests: encode -> (recode)* -> decode round trips, innovation
// accounting, and field-size effects. Parameterized over generation size and
// payload length.

#include <gtest/gtest.h>

#include <tuple>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/recoder.hpp"
#include "gf/gf2.hpp"
#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using Gf = gf::Gf256;

template <typename Field>
std::vector<std::vector<typename Field::value_type>> random_source(
    std::size_t g, std::size_t symbols, Rng& rng) {
  std::vector<std::vector<typename Field::value_type>> src(
      g, std::vector<typename Field::value_type>(symbols));
  for (auto& row : src) {
    for (auto& v : row) {
      v = static_cast<typename Field::value_type>(rng.below(Field::order));
    }
  }
  return src;
}

class RlncRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RlncRoundTrip, EncodeDecode) {
  const auto [g, symbols] = GetParam();
  Rng rng(static_cast<std::uint64_t>(g * 1000 + symbols));
  const auto source = random_source<Gf>(g, symbols, rng);
  coding::SourceEncoder<Gf> enc(7, source);
  coding::Decoder<Gf> dec(7, g, symbols);

  std::size_t sent = 0;
  while (!dec.complete()) {
    dec.absorb(enc.emit(rng));
    ASSERT_LT(++sent, static_cast<std::size_t>(g) * 4) << "decoder starving";
  }
  EXPECT_EQ(dec.source_packets(), source);
  // Over GF(2^8), random combinations are almost always innovative.
  EXPECT_LE(sent, static_cast<std::size_t>(g) + 3);
}

TEST_P(RlncRoundTrip, EncodeRecodeDecode) {
  const auto [g, symbols] = GetParam();
  Rng rng(static_cast<std::uint64_t>(g * 7777 + symbols));
  const auto source = random_source<Gf>(g, symbols, rng);
  coding::SourceEncoder<Gf> enc(1, source);

  // Chain: encoder -> relay1 -> relay2 -> decoder, one packet per hop per
  // round, exactly like a depth-3 path in the overlay.
  coding::Recoder<Gf> relay1(1, g, symbols), relay2(1, g, symbols);
  coding::Decoder<Gf> dec(1, g, symbols);

  for (int round = 0; round < g * 6 && !dec.complete(); ++round) {
    relay1.absorb(enc.emit(rng));
    if (auto p = relay1.emit(rng)) relay2.absorb(*p);
    if (auto p = relay2.emit(rng)) dec.absorb(*p);
  }
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(dec.source_packets(), source);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RlncRoundTrip,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(2, 8),
                                           std::make_tuple(4, 16),
                                           std::make_tuple(8, 3),
                                           std::make_tuple(16, 16),
                                           std::make_tuple(32, 64),
                                           std::make_tuple(3, 200),
                                           std::make_tuple(24, 1),
                                           std::make_tuple(64, 8)));

TEST(SourceEncoder, Validation) {
  EXPECT_THROW(coding::SourceEncoder<Gf>(0, {}), std::invalid_argument);
  EXPECT_THROW(coding::SourceEncoder<Gf>(0, {{}}), std::invalid_argument);
  EXPECT_THROW(coding::SourceEncoder<Gf>(0, {{1, 2}, {1}}), std::invalid_argument);
}

TEST(SourceEncoder, SystematicPackets) {
  Rng rng(5);
  const auto source = random_source<Gf>(4, 8, rng);
  coding::SourceEncoder<Gf> enc(3, source);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto p = enc.emit_systematic(i);
    EXPECT_EQ(p.generation, 3u);
    EXPECT_EQ(p.payload, source[i]);
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(p.coeffs[j], i == j ? 1 : 0);
  }
  EXPECT_THROW(enc.emit_systematic(4), std::out_of_range);
}

TEST(SourceEncoder, EmittedPacketsNeverDegenerate) {
  Rng rng(6);
  const auto source = random_source<Gf>(3, 4, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(enc.emit(rng).is_degenerate());
}

TEST(SourceEncoder, PayloadMatchesCoefficients) {
  Rng rng(7);
  const auto source = random_source<Gf>(5, 6, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  const auto p = enc.emit(rng);
  // Recompute payload from the carried coefficients.
  std::vector<std::uint8_t> expect(6, 0);
  for (std::size_t i = 0; i < 5; ++i) {
    Gf::region_madd(expect.data(), source[i].data(), p.coeffs[i], 6);
  }
  EXPECT_EQ(p.payload, expect);
}

TEST(Decoder, SystematicDecoding) {
  Rng rng(8);
  const auto source = random_source<Gf>(4, 4, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  coding::Decoder<Gf> dec(0, 4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(dec.absorb(enc.emit_systematic(i)));
  }
  EXPECT_TRUE(dec.complete());
  EXPECT_EQ(dec.source_packets(), source);
}

TEST(Decoder, DuplicateNotInnovative) {
  Rng rng(9);
  const auto source = random_source<Gf>(4, 4, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  coding::Decoder<Gf> dec(0, 4, 4);
  const auto p = enc.emit(rng);
  EXPECT_TRUE(dec.is_innovative(p));
  EXPECT_TRUE(dec.absorb(p));
  EXPECT_FALSE(dec.is_innovative(p));
  EXPECT_FALSE(dec.absorb(p));
  EXPECT_EQ(dec.rank(), 1u);
}

TEST(Decoder, InnovativePlusRedundantEqualsReceived) {
  Rng rng(77);
  const auto source = random_source<Gf>(6, 8, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  coding::Decoder<Gf> dec(0, 6, 8);

  // Fresh combinations until complete, then duplicates and a malformed
  // packet: every absorb() call must land in exactly one of the two classes.
  std::vector<coding::CodedPacket<Gf>> seen;
  while (!dec.complete()) {
    auto p = enc.emit(rng);
    seen.push_back(p);
    dec.absorb(p);
  }
  for (const auto& p : seen) EXPECT_FALSE(dec.absorb(p));
  coding::CodedPacket<Gf> malformed;
  malformed.generation = 9;  // foreign generation: rejected, still "received"
  malformed.coeffs.assign(6, 1);
  malformed.payload.assign(8, 1);
  EXPECT_FALSE(dec.absorb(malformed));

  EXPECT_EQ(dec.packets_innovative(), 6u);
  EXPECT_EQ(dec.packets_received(), seen.size() * 2 + 1);
  EXPECT_EQ(dec.packets_innovative() + dec.packets_redundant(),
            dec.packets_received());
}

TEST(Decoder, RejectsForeignPackets) {
  coding::Decoder<Gf> dec(0, 4, 4);
  coding::CodedPacket<Gf> wrong_gen;
  wrong_gen.generation = 1;
  wrong_gen.coeffs.assign(4, 1);
  wrong_gen.payload.assign(4, 1);
  EXPECT_FALSE(dec.absorb(wrong_gen));

  coding::CodedPacket<Gf> wrong_shape;
  wrong_shape.generation = 0;
  wrong_shape.coeffs.assign(3, 1);
  wrong_shape.payload.assign(4, 1);
  EXPECT_FALSE(dec.absorb(wrong_shape));
}

TEST(Decoder, ProgressiveRecoveryWithSystematicPackets) {
  Rng rng(20);
  const auto source = random_source<Gf>(6, 8, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  coding::Decoder<Gf> dec(0, 6, 8);
  // Systematic packets are recoverable the moment they arrive.
  dec.absorb(enc.emit_systematic(2));
  EXPECT_TRUE(dec.recoverable(2));
  EXPECT_FALSE(dec.recoverable(0));
  EXPECT_EQ(dec.recoverable_count(), 1u);
  EXPECT_EQ(dec.recover_packet(2), source[2]);
  EXPECT_THROW(dec.recover_packet(0), std::logic_error);

  dec.absorb(enc.emit_systematic(5));
  EXPECT_EQ(dec.recoverable_count(), 2u);
  EXPECT_EQ(dec.recover_packet(5), source[5]);
}

TEST(Decoder, RandomCombinationsRarelyRecoverableEarly) {
  // Dense random combinations individually pin down nothing until the rank
  // boundary; recoverable_count jumps to g only at completion.
  Rng rng(21);
  const auto source = random_source<Gf>(8, 8, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  coding::Decoder<Gf> dec(0, 8, 8);
  while (dec.rank() < 7) dec.absorb(enc.emit(rng));
  EXPECT_EQ(dec.recoverable_count(), 0u);  // rank 7, nothing isolated yet
  while (!dec.complete()) dec.absorb(enc.emit(rng));
  EXPECT_EQ(dec.recoverable_count(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(dec.recover_packet(i), source[i]);
  }
}

TEST(Decoder, MixedSystematicAndCodedProgressive) {
  Rng rng(22);
  const auto source = random_source<Gf>(5, 6, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  coding::Decoder<Gf> dec(0, 5, 6);
  dec.absorb(enc.emit_systematic(0));
  dec.absorb(enc.emit_systematic(1));
  dec.absorb(enc.emit(rng));
  // The coded packet reduces against rows 0,1; packets 0,1 stay recoverable.
  EXPECT_TRUE(dec.recoverable(0));
  EXPECT_TRUE(dec.recoverable(1));
  EXPECT_EQ(dec.recover_packet(0), source[0]);
  EXPECT_THROW(dec.recoverable(9), std::out_of_range);
}

TEST(Decoder, SourcePacketBeforeCompleteThrows) {
  coding::Decoder<Gf> dec(0, 2, 2);
  EXPECT_THROW(dec.source_packet(0), std::logic_error);
}

TEST(Recoder, SilentWhenEmpty) {
  Rng rng(10);
  coding::Recoder<Gf> rec(0, 4, 4);
  EXPECT_FALSE(rec.emit(rng).has_value());
}

TEST(Recoder, EmitsDecodablePackets) {
  Rng rng(11);
  const auto source = random_source<Gf>(6, 10, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  coding::Recoder<Gf> rec(0, 6, 10);
  // Partial knowledge: recoder holds rank 3.
  while (rec.rank() < 3) rec.absorb(enc.emit(rng));
  // Everything it emits must be consistent with the true source data.
  for (int i = 0; i < 50; ++i) {
    const auto p = rec.emit(rng);
    ASSERT_TRUE(p.has_value());
    std::vector<std::uint8_t> expect(10, 0);
    for (std::size_t j = 0; j < 6; ++j) {
      Gf::region_madd(expect.data(), source[j].data(), p->coeffs[j], 10);
    }
    EXPECT_EQ(p->payload, expect);
  }
}

TEST(Recoder, RankNeverExceedsUpstream) {
  Rng rng(12);
  const auto source = random_source<Gf>(8, 4, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  coding::Recoder<Gf> upstream(0, 8, 4), downstream(0, 8, 4);
  while (upstream.rank() < 5) upstream.absorb(enc.emit(rng));
  for (int i = 0; i < 200; ++i) {
    if (auto p = upstream.emit(rng)) downstream.absorb(*p);
  }
  EXPECT_EQ(downstream.rank(), 5u);  // cannot know more than its only parent
}

TEST(FieldSize, Gf2CombinationsOftenDependent) {
  // Over GF(2) a random combination of g packets fails to be innovative with
  // probability ~1/2 at the boundary; over GF(2^8) almost never. This is the
  // rationale for coding over larger fields.
  auto run = [](auto field_tag, std::uint64_t seed) {
    using F = decltype(field_tag);
    Rng rng(seed);
    const std::size_t g = 8;
    const auto source = random_source<F>(g, 4, rng);
    coding::SourceEncoder<F> enc(0, source);
    std::size_t waste = 0, total = 0;
    for (int trial = 0; trial < 60; ++trial) {
      coding::Decoder<F> dec(0, g, 4);
      while (!dec.complete()) {
        ++total;
        if (!dec.absorb(enc.emit(rng))) ++waste;
      }
    }
    return static_cast<double>(waste) / static_cast<double>(total);
  };
  const double waste2 = run(gf::Gf2{}, 13);
  const double waste256 = run(gf::Gf256{}, 14);
  EXPECT_GT(waste2, 0.10);
  EXPECT_LT(waste256, 0.02);
}

TEST(Packet, WireSizeAndDegeneracy) {
  coding::CodedPacket<Gf> p;
  p.generation = 0;
  p.coeffs.assign(8, 0);
  p.payload.assign(16, 9);
  EXPECT_TRUE(p.is_degenerate());
  p.coeffs[3] = 1;
  EXPECT_FALSE(p.is_degenerate());
  EXPECT_EQ(p.wire_size(), sizeof(std::uint32_t) + 8 + 16);
}

TEST(RecoderEmitInto, ReusesBuffersAndMatchesEmit) {
  const std::size_t g = 8, symbols = 32;
  Rng rng(21);
  const auto source = random_source<Gf>(g, symbols, rng);
  coding::SourceEncoder<Gf> enc(0, source);
  coding::Recoder<Gf> rec(0, g, symbols);
  while (!rec.complete()) rec.absorb(enc.emit(rng));

  coding::CodedPacket<Gf> p;
  ASSERT_TRUE(rec.emit_into(p, rng));
  ASSERT_EQ(p.coeffs.size(), g);
  ASSERT_EQ(p.payload.size(), symbols);
  const auto* coeffs_buf = p.coeffs.data();
  const auto* payload_buf = p.payload.data();

  // Re-emitting into the same packet reuses the existing buffers.
  ASSERT_TRUE(rec.emit_into(p, rng));
  EXPECT_EQ(p.coeffs.data(), coeffs_buf);
  EXPECT_EQ(p.payload.data(), payload_buf);

  // emit() and emit_into() draw from the same RNG stream: two recoders with
  // identical state and identical RNGs produce identical packets either way.
  Rng a(77), b(77);
  const auto via_emit = rec.emit(a);
  coding::CodedPacket<Gf> via_into;
  ASSERT_TRUE(rec.emit_into(via_into, b));
  ASSERT_TRUE(via_emit.has_value());
  EXPECT_EQ(via_emit->coeffs, via_into.coeffs);
  EXPECT_EQ(via_emit->payload, via_into.payload);

  // And what comes out still decodes.
  coding::Decoder<Gf> dec(0, g, symbols);
  Rng c(5);
  while (!dec.complete()) {
    coding::CodedPacket<Gf> q;
    ASSERT_TRUE(rec.emit_into(q, c));
    dec.absorb(q);
  }
  EXPECT_EQ(dec.source_packets(), source);
}

TEST(RecoderEmitInto, EmptyRecoderStaysSilent) {
  Rng rng(22);
  coding::Recoder<Gf> rec(0, 4, 8);
  coding::CodedPacket<Gf> p;
  EXPECT_FALSE(rec.emit_into(p, rng));
  EXPECT_FALSE(rec.emit(rng).has_value());
}

TEST(EncoderEmitInto, MatchesEmitAndReusesBuffers) {
  const std::size_t g = 6, symbols = 16;
  Rng rng(23);
  const auto source = random_source<Gf>(g, symbols, rng);
  coding::SourceEncoder<Gf> enc(0, source);

  Rng a(9), b(9);
  const auto via_emit = enc.emit(a);
  coding::CodedPacket<Gf> via_into;
  enc.emit_into(via_into, b);
  EXPECT_EQ(via_emit.coeffs, via_into.coeffs);
  EXPECT_EQ(via_emit.payload, via_into.payload);

  const auto* buf = via_into.payload.data();
  enc.emit_into(via_into, b);
  EXPECT_EQ(via_into.payload.data(), buf);
}

TEST(Gf2_16Codec, RoundTrip) {
  using F = gf::Gf2_16;
  Rng rng(15);
  const auto source = random_source<F>(6, 5, rng);
  coding::SourceEncoder<F> enc(0, source);
  coding::Decoder<F> dec(0, 6, 5);
  while (!dec.complete()) dec.absorb(enc.emit(rng));
  EXPECT_EQ(dec.source_packets(), source);
}

}  // namespace
}  // namespace ncast
