// Trackerless swarm: Section 7's endgame — no server, no matrix, no tracker.
//
//   $ ./trackerless_swarm
//
// The source is just a peer that happens to hold the content. Everyone else
// starts knowing exactly one other peer, finds upload slots by gossip,
// repairs silent feeds locally, and keeps serving after the source leaves
// (the self-sustaining download of the Section 6/7 open issue).

#include <cstdio>
#include <memory>
#include <vector>

#include "node/driver.hpp"
#include "util/rng.hpp"

using namespace ncast;
using namespace ncast::node;

int main() {
  // 64 KiB of content in 8 generations.
  Rng rng(1);
  std::vector<std::uint8_t> content(64 * 1024);
  for (auto& b : content) b = static_cast<std::uint8_t>(rng.below(256));

  GossipPeerConfig cfg;
  cfg.want_parents = 3;
  cfg.upload_slots = 3;
  cfg.silence_timeout = 6;
  GossipPeerConfig source_cfg = cfg;
  source_cfg.upload_slots = 6;

  GossipPeer source(1, source_cfg, content, /*generation_size=*/16,
                    /*symbols=*/512);
  std::vector<std::unique_ptr<GossipPeer>> peers;
  std::vector<GossipPeer*> ptrs{&source};
  for (Address a = 2; a <= 41; ++a) {
    // Daisy-chained introductions: peer a only knows peer a-1.
    peers.push_back(std::make_unique<GossipPeer>(a, cfg, a - 1));
    ptrs.push_back(peers.back().get());
  }
  GossipDriver driver(ptrs);

  std::printf("40 peers, each introduced to exactly one other peer;\n"
              "the source (peer 1) offers 6 upload slots and knows nobody.\n\n");

  for (int checkpoint = 1; checkpoint <= 4; ++checkpoint) {
    driver.run(15);
    std::size_t wired = 0, decoded = 0;
    for (auto& p : peers) {
      if (p->parent_count() > 0) ++wired;
      if (p->decoded()) ++decoded;
    }
    std::printf("tick %3llu: %2zu/40 wired, %2zu/40 decoded, source serving %zu\n",
                static_cast<unsigned long long>(driver.now()), wired, decoded,
                source.child_count());
  }

  const bool all = driver.run_until_decoded(3000);
  std::printf("tick %3llu: %s\n", static_cast<unsigned long long>(driver.now()),
              all ? "everyone decoded" : "TIMEOUT");

  // The source retires; a latecomer must still be able to download —
  // the swarm collectively holds the content now.
  std::printf("\nsource leaves; peer 99 joins knowing only peer 17...\n");
  source.leave(driver.network());
  auto late = std::make_unique<GossipPeer>(99, cfg, 17);
  driver.add_peer(late.get());
  driver.run(600);
  std::printf("latecomer: %s (%zu parents, rank %zu)\n",
              late->decoded() ? "downloaded the full content from the swarm"
                              : "did not finish",
              late->parent_count(), late->rank());
  if (late->decoded()) {
    std::printf("payload check: %s\n",
                late->data() == content ? "bit-for-bit identical" : "CORRUPT");
  }

  const auto& net = driver.network();
  std::printf(
      "\ntraffic: %llu data, %llu control, %llu keepalive\n"
      "No participant ever held global membership; repair was local silence\n"
      "detection; and the swarm outlived its source — the paper's Section 7\n"
      "endgame, running.\n",
      static_cast<unsigned long long>(net.data_messages()),
      static_cast<unsigned long long>(net.control_messages()),
      static_cast<unsigned long long>(net.keepalive_messages()));
  return 0;
}
