// Live streaming under churn: a synchronous broadcast where peers join,
// crash, and get repaired while the stream is running.
//
//   $ ./live_streaming
//
// The stream is delivered generation by generation ("epochs"). Between
// epochs the membership changes: new viewers join, some leave gracefully,
// some crash (their children complain, the server repairs). The demo shows
// the paper's operational story: failures cost their children one repair
// interval of degraded rate, then the overlay is as good as new.

#include <cstdio>
#include <vector>

#include "overlay/curtain_server.hpp"
#include "overlay/flow_graph.hpp"
#include "sim/broadcast.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

void print_epoch(int epoch, const overlay::CurtainServer& server,
                 const sim::BroadcastReport& report) {
  RunningStats rate;
  for (const auto& o : report.outcomes) {
    rate.add(static_cast<double>(o.max_flow));
  }
  std::printf(
      "epoch %d: %4zu viewers (%zu awaiting repair) | decoded %5.1f%% | "
      "mean capacity %.2f/3 | corrupted %.0f\n",
      epoch, server.matrix().row_count(), server.matrix().failed_count(),
      report.decoded_fraction() * 100, rate.mean(),
      report.corrupted_fraction() * 100);
}

}  // namespace

int main() {
  const std::uint32_t k = 24, d = 3;
  overlay::CurtainServer server(k, d, Rng(2025));
  Rng churn(99);

  // Initial audience.
  std::vector<overlay::NodeId> alive;
  for (int i = 0; i < 200; ++i) alive.push_back(server.join().node);

  std::printf("Live stream: k = %u server threads, d = %u per viewer\n\n", k, d);

  sim::BroadcastConfig cfg;
  cfg.generation_size = 8;
  cfg.symbols = 64;

  for (int epoch = 1; epoch <= 8; ++epoch) {
    // --- membership churn between generations -----------------------------
    // ~5% of viewers crash; they are noticed and repaired one epoch later.
    std::vector<overlay::NodeId> crashed;
    for (auto node : alive) {
      if (!server.matrix().contains(node)) continue;  // repaired last epoch
      if (churn.chance(0.05) && !server.matrix().row(node).failed) {
        server.report_failure(node);
        crashed.push_back(node);
      }
    }
    // ~5% leave politely, 10 new viewers join.
    std::vector<overlay::NodeId> still_alive;
    for (auto node : alive) {
      if (!server.matrix().contains(node)) continue;
      if (!server.matrix().row(node).failed && churn.chance(0.05)) {
        server.leave(node);
      } else {
        still_alive.push_back(node);
      }
    }
    alive = std::move(still_alive);
    for (int i = 0; i < 10; ++i) alive.push_back(server.join().node);

    // --- stream one generation --------------------------------------------
    cfg.seed = 1000 + static_cast<std::uint64_t>(epoch);
    const auto report = sim::simulate_broadcast(server.matrix(), cfg);
    print_epoch(epoch, server, report);

    // --- repairs land before the next generation ---------------------------
    for (auto node : crashed) {
      if (server.matrix().contains(node) && server.matrix().row(node).failed) {
        server.repair(node);
      }
    }
  }

  const auto& stats = server.stats();
  std::printf(
      "\nServer control totals: %llu joins, %llu leaves, %llu failures, "
      "%llu repairs, %llu control messages\n",
      static_cast<unsigned long long>(stats.joins),
      static_cast<unsigned long long>(stats.graceful_leaves),
      static_cast<unsigned long long>(stats.failures_reported),
      static_cast<unsigned long long>(stats.repairs),
      static_cast<unsigned long long>(stats.control_messages));
  std::printf(
      "Note the pattern: each epoch's decode%% dips only by roughly the crash\n"
      "fraction (failures hurt their children once), and repairs restore the\n"
      "full rate — the failure containment of Theorem 4 in action.\n");
  return 0;
}
