// Asynchronous file distribution (the Avalanche scenario, [13]): a 256 KiB
// file is pushed through a curtain overlay as coded generations; every peer
// is simultaneously a downloader and an uploader holding only a recoding
// buffer per generation — no peer ever needs the original blocks to help
// others.
//
//   $ ./file_distribution

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "coding/file_codec.hpp"
#include "coding/recoder.hpp"
#include "overlay/curtain_server.hpp"
#include "overlay/flow_graph.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace ncast;

int main() {
  // The file.
  Rng data_rng(1);
  std::vector<std::uint8_t> file(128 * 1024);
  for (auto& b : file) b = static_cast<std::uint8_t>(data_rng.below(256));

  const std::size_t generation_size = 16;  // packets per generation
  const std::size_t symbols = 1024;        // 1 KiB packets
  coding::FileEncoder seed_host(file, generation_size, symbols);
  std::printf("file: %zu KiB -> %zu generations of %zu x %zu B\n",
              file.size() / 1024, seed_host.generations(), generation_size,
              symbols);

  // The swarm: 60 peers in a curtain with k = 12, d = 3.
  const std::uint32_t k = 12, d = 3;
  overlay::CurtainServer server(k, d, Rng(7));
  const std::size_t peers = 40;
  for (std::size_t i = 0; i < peers; ++i) server.join();

  // Per-peer state: one recoder per generation (the upload buffer) and a
  // FileDecoder view for progress; the recoder basis doubles as the decoder.
  struct Peer {
    std::vector<coding::Recoder<gf::Gf256>> buffers;

    /// A uniformly random generation buffer with anything to give.
    /// (Random, not round-robin: a deterministic rotation can lock an edge
    /// into a residue class of generations and starve a descendant forever.)
    coding::Recoder<gf::Gf256>* next_upload(Rng& rng) {
      std::size_t with_data = 0;
      for (const auto& b : buffers) {
        if (b.rank() > 0) ++with_data;
      }
      if (with_data == 0) return nullptr;
      std::size_t pick = rng.below(with_data);
      for (auto& b : buffers) {
        if (b.rank() > 0 && pick-- == 0) return &b;
      }
      return nullptr;
    }

    bool complete() const {
      for (const auto& b : buffers) {
        if (!b.complete()) return false;
      }
      return true;
    }
    std::size_t rank() const {
      std::size_t r = 0;
      for (const auto& b : buffers) r += b.rank();
      return r;
    }
  };
  std::unordered_map<overlay::NodeId, Peer> swarm;
  for (auto node : server.matrix().nodes_in_order()) {
    Peer p;
    for (std::size_t g = 0; g < seed_host.generations(); ++g) {
      p.buffers.emplace_back(static_cast<std::uint32_t>(g), generation_size,
                             symbols);
    }
    swarm.emplace(node, std::move(p));
  }

  // Rounds: the seed sends one packet per thread (round-robin generations);
  // every peer forwards one recoded packet per out-segment for the
  // least-complete generation it holds data for.
  Rng rng(2);
  const auto edges = server.matrix().edges();
  const std::size_t needed =
      seed_host.generations() * generation_size;

  std::size_t round = 0, done = 0;
  while (done < peers) {
    ++round;
    std::vector<std::pair<overlay::NodeId, coding::CodedPacket<gf::Gf256>>> mail;
    for (const auto& e : edges) {
      if (e.from == overlay::kServerNode) {
        // Random generation per packet. (Round-robin would assign each
        // server edge a fixed residue class of generations — the edge order
        // is static — starving direct children of some generations forever.)
        const auto gen = rng.below(seed_host.generations());
        mail.emplace_back(e.to, seed_host.emit(gen, rng));
        continue;
      }
      // Random generation among those this peer holds data for.
      auto& peer = swarm.at(e.from);
      if (auto* buf = peer.next_upload(rng)) {
        if (auto p = buf->emit(rng)) mail.emplace_back(e.to, std::move(*p));
      }
    }
    for (auto& [to, packet] : mail) {
      auto& peer = swarm.at(to);
      peer.buffers[packet.generation].absorb(packet);
    }
    done = 0;
    for (const auto& [node, peer] : swarm) {
      if (peer.complete()) ++done;
    }
    if (round % 50 == 0 || done == peers) {
      RunningStats progress;
      for (const auto& [node, peer] : swarm) {
        progress.add(static_cast<double>(peer.rank()) /
                     static_cast<double>(needed));
      }
      std::printf("round %4zu: mean progress %5.1f%%, %2zu/%zu peers done\n",
                  round, progress.mean() * 100, done, peers);
    }
    if (round > 20000) {
      std::printf("bailing out: swarm did not complete\n");
      return 1;
    }
  }

  // Verify a random peer's reconstruction bit-for-bit.
  const auto node = server.matrix().nodes_in_order()[peers / 2];
  coding::FileDecoder verify(seed_host.plan());
  Rng vr(3);
  for (auto& buf : swarm.at(node).buffers) {
    while (!verify.decoder(buf.generation()).complete()) {
      const auto p = buf.emit(vr);
      verify.absorb(*p);
    }
  }
  std::printf("peer %u reconstruction %s\n", node,
              verify.data() == file ? "MATCHES the original" : "CORRUPT");
  std::printf(
      "Every peer uploaded only random recombinations of its buffer — the\n"
      "practical-network-coding property that makes the overlay oblivious\n"
      "to who has which block (no rarest-first scheduling needed).\n");
  return 0;
}
