// Adversary drill: the Section 5 and Section 7 attacks, staged.
//
//   $ ./adversary_drill
//
// Act 1 — a coordinated failure attack: 30 colluders join back-to-back and
//         power off simultaneously. With append-order rows they amputate the
//         whole curtain below them; with random-position insertion (the
//         paper's defense) the same cohort is no worse than random churn.
// Act 2 — a jamming attack: two peers inject well-formed garbage packets.
//         Rank looks healthy everywhere, yet almost every decoded payload is
//         trash — the open problem that motivated homomorphic signatures.

#include <cstdio>
#include <vector>

#include "overlay/curtain_server.hpp"
#include "overlay/flow_graph.hpp"
#include "sim/broadcast.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

struct Damage {
  double cut_off = 0;    // fraction of working nodes with zero capacity
  double mean_rate = 0;  // mean capacity fraction
};

Damage assess(const overlay::ThreadMatrix& m, std::uint32_t d) {
  const auto fg = build_flow_graph(m);
  std::size_t working = 0, dead = 0;
  RunningStats rate;
  for (auto node : m.nodes_in_order()) {
    if (m.row(node).failed) continue;
    ++working;
    const auto conn = node_connectivity(fg, node);
    if (conn == 0) ++dead;
    rate.add(static_cast<double>(conn) / d);
  }
  return Damage{static_cast<double>(dead) / static_cast<double>(working),
                rate.mean()};
}

}  // namespace

int main() {
  const std::uint32_t k = 16, d = 2;
  const std::size_t population = 1200;
  // 40 colluders make 80 thread-clips across k = 16 columns: enough to sever
  // every thread at the band with high probability. (With fewer colluders a
  // column occasionally escapes and the curtain heals below it — worth
  // trying: lower this to 25 and watch the damage shrink.)
  const std::size_t colluders = 40;

  std::printf("ACT 1 — coordinated failure attack (%zu colluders)\n\n",
              colluders);

  for (const auto policy : {overlay::InsertPolicy::kAppend,
                            overlay::InsertPolicy::kRandomPosition}) {
    overlay::CurtainServer server(k, d, Rng(6), policy);
    // The colluders register mid-stream, consecutively.
    std::vector<overlay::NodeId> cohort;
    for (std::size_t i = 0; i < population; ++i) {
      const auto t = server.join();
      if (i >= population / 2 && cohort.size() < colluders) {
        cohort.push_back(t.node);
      }
    }
    auto m = server.matrix();
    for (auto node : cohort) m.mark_failed(node);
    const auto damage = assess(m, d);
    std::printf(
        "  %-18s cut off %5.1f%% of peers, mean rate %5.1f%%\n",
        policy == overlay::InsertPolicy::kAppend ? "append order:"
                                                 : "random insertion:",
        damage.cut_off * 100, damage.mean_rate * 100);
  }

  std::printf(
      "\n  With append order the cohort forms a failed band across the\n"
      "  curtain; random insertion (Section 5) scatters it into ordinary\n"
      "  churn.\n\n");

  std::printf("ACT 2 — jamming attack (2 jammers among 150 peers)\n\n");
  {
    overlay::CurtainServer server(12, 3, Rng(6));
    for (int i = 0; i < 150; ++i) server.join();
    std::vector<sim::NodeBehavior> behavior(150, sim::NodeBehavior::kHonest);
    behavior[3] = sim::NodeBehavior::kJammer;
    behavior[11] = sim::NodeBehavior::kJammer;

    sim::BroadcastConfig cfg;
    cfg.generation_size = 8;
    cfg.symbols = 32;
    cfg.seed = 9;
    const auto report = simulate_broadcast(server.matrix(), cfg, behavior);

    std::size_t clean = 0, corrupt = 0;
    for (const auto& o : report.outcomes) {
      if (o.node == 3 || o.node == 11) continue;
      if (o.decoded) (o.corrupted ? corrupt : clean) += 1;
    }
    std::printf(
        "  decoded cleanly: %zu peers (the jammers' ancestors)\n"
        "  decoded garbage: %zu peers\n"
        "  Decoding *succeeds* everywhere — rank accounting cannot see the\n"
        "  poison. After mixing, two jammers contaminate nearly the entire\n"
        "  swarm. Defense requires signatures that survive recoding, which\n"
        "  the paper leaves open (and which later became homomorphic\n"
        "  signature schemes).\n",
        clean, corrupt);
  }
  return 0;
}
