// Protocol walkthrough: the actual message-level endpoints (ServerNode /
// ClientNode) running Section 3's hello, good-bye, and repair protocols over
// a transport — the embeddable API, one level below the simulators.
//
//   $ ./protocol_demo

#include <cstdio>
#include <memory>
#include <vector>

#include "node/driver.hpp"
#include "util/rng.hpp"

using namespace ncast;
using namespace ncast::node;

int main() {
  // The stream: 1.5 KiB split into two generations of 12 packets x 64 bytes.
  Rng rng(1);
  std::vector<std::uint8_t> content(1536);
  for (auto& b : content) b = static_cast<std::uint8_t>(rng.below(256));

  ServerConfig scfg;
  scfg.k = 8;
  scfg.default_degree = 2;
  scfg.repair_delay = 3;
  scfg.generation_size = 12;
  scfg.symbols = 64;
  ServerNode server(scfg, content);

  ClientConfig ccfg;
  ccfg.silence_timeout = 5;

  std::vector<std::unique_ptr<ClientNode>> clients;
  std::vector<ClientNode*> ptrs;
  for (Address a = 1; a <= 18; ++a) {
    clients.push_back(std::make_unique<ClientNode>(a, ccfg));
    ptrs.push_back(clients.back().get());
  }
  TickDriver driver(server, ptrs);

  std::printf("tick 0: 18 clients send JoinRequest\n");
  for (auto& c : clients) c->join(driver.network());
  driver.run(2);
  std::printf("tick 2: matrix has %zu rows; control msgs so far: %llu\n",
              server.matrix().row_count(),
              static_cast<unsigned long long>(driver.network().control_messages()));

  driver.run(8);
  std::size_t decoded = 0;
  for (auto& c : clients) decoded += c->decoded() ? 1 : 0;
  std::printf("tick 10: %zu/18 decoded (stream flowing through recoders)\n",
              decoded);

  // A mid-curtain node crashes; nobody tells the server — children notice.
  std::printf("tick 10: client 3 crashes silently\n");
  driver.crash(*clients[2]);
  const auto repairs_before = server.repairs_done();
  driver.run(15);
  std::printf("tick 25: server executed %llu repair(s) from complaints; "
              "matrix rows: %zu, failed tags: %zu\n",
              static_cast<unsigned long long>(server.repairs_done() - repairs_before),
              server.matrix().row_count(), server.matrix().failed_count());

  // A polite departure.
  std::printf("tick 25: client 7 sends Goodbye\n");
  clients[6]->leave(driver.network());
  driver.run(5);

  driver.run(60);
  decoded = 0;
  for (auto& c : clients) {
    if (!c->crashed() && c->decoded()) ++decoded;
  }
  std::printf("tick 90: %zu/17 live clients decoded; verifying payloads... ",
              decoded);
  bool all_match = true;
  for (auto& c : clients) {
    if (c->crashed() || !c->decoded()) continue;
    all_match &= (c->data() == server.data());
  }
  std::printf("%s\n", all_match ? "all match the source" : "MISMATCH");

  const auto& net = driver.network();
  std::printf(
      "\ntraffic: %llu data, %llu control, %llu keepalive, %llu dropped\n"
      "Control stays O(d) per membership event; everything else is payload.\n",
      static_cast<unsigned long long>(net.data_messages()),
      static_cast<unsigned long long>(net.control_messages()),
      static_cast<unsigned long long>(net.keepalive_messages()),
      static_cast<unsigned long long>(net.messages_dropped()));
  return 0;
}
