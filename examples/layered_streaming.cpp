// Layered streaming (Section 5): heterogeneous users + priority encoding.
//
//   $ ./layered_streaming
//
// The paper notes that because nothing in the design requires equal
// bandwidths, higher-bandwidth users can receive higher-resolution
// broadcasts via priority encoding transmission [2], with graceful
// degradation under failures. We realize the classic two-layer construction:
// the server runs one curtain per video layer; every viewer joins the base
// layer, and only high-bandwidth viewers additionally join the enhancement
// layer. Failures degrade enhancement reception first; the base layer — the
// thing that keeps video on screen — survives.

#include <cstdio>
#include <vector>

#include "overlay/curtain_server.hpp"
#include "sim/broadcast.hpp"
#include "util/rng.hpp"

using namespace ncast;

namespace {

struct LayerResult {
  std::size_t viewers = 0;
  std::size_t decoded = 0;
  double percent() const {
    return viewers ? 100.0 * static_cast<double>(decoded) /
                         static_cast<double>(viewers)
                   : 0.0;
  }
};

}  // namespace

int main() {
  // Two layers, one curtain each. Unit = half a DSL line's bandwidth.
  overlay::CurtainServer base(16, 2, Rng(1));         // SD layer
  overlay::CurtainServer enhancement(16, 2, Rng(2));  // HD layer

  // Audience: 300 DSL viewers (base only), 100 fiber viewers (both).
  struct Viewer {
    overlay::NodeId base_id;
    overlay::NodeId enh_id;  // kServerNode sentinel = not subscribed
    bool fiber;
  };
  std::vector<Viewer> audience;
  for (int i = 0; i < 400; ++i) {
    const bool fiber = (i % 4 == 3);
    Viewer v;
    v.fiber = fiber;
    v.base_id = base.join().node;
    v.enh_id = fiber ? enhancement.join().node : overlay::kServerNode;
    audience.push_back(v);
  }
  std::printf("audience: 300 DSL (base layer only), 100 fiber (base + HD)\n\n");

  // Stream both layers at increasing failure rates.
  std::printf("%-10s | %-14s | %-14s | %s\n", "failures", "base decoded",
              "HD decoded", "fiber experience");
  std::printf("-----------|----------------|----------------|------------------\n");

  for (const double p : {0.0, 0.05, 0.15}) {
    auto base_m = base.matrix();
    auto enh_m = enhancement.matrix();
    Rng rng(100 + static_cast<std::uint64_t>(p * 1000));
    for (auto node : base_m.nodes_in_order()) {
      if (rng.chance(p)) base_m.mark_failed(node);
    }
    for (auto node : enh_m.nodes_in_order()) {
      if (rng.chance(p)) enh_m.mark_failed(node);
    }

    sim::BroadcastConfig cfg;
    cfg.generation_size = 8;
    cfg.symbols = 32;
    cfg.seed = 200 + static_cast<std::uint64_t>(p * 1000);
    const auto base_report = sim::simulate_broadcast(base_m, cfg);
    cfg.seed += 1;
    const auto enh_report = sim::simulate_broadcast(enh_m, cfg);

    auto decoded_set = [](const sim::BroadcastReport& r) {
      std::vector<bool> ok;
      for (const auto& o : r.outcomes) {
        if (o.node >= ok.size()) ok.resize(o.node + 1, false);
        ok[o.node] = o.decoded && !o.corrupted;
      }
      return ok;
    };
    const auto base_ok = decoded_set(base_report);
    const auto enh_ok = decoded_set(enh_report);

    LayerResult base_all, hd_fiber;
    std::size_t fiber_hd = 0, fiber_sd_only = 0, fiber_dark = 0;
    for (const auto& v : audience) {
      const bool has_base = v.base_id < base_ok.size() && base_ok[v.base_id];
      if (base_m.contains(v.base_id) && !base_m.row(v.base_id).failed) {
        ++base_all.viewers;
        if (has_base) ++base_all.decoded;
      }
      if (!v.fiber) continue;
      const bool has_hd = v.enh_id < enh_ok.size() && enh_ok[v.enh_id];
      ++hd_fiber.viewers;
      if (has_hd) ++hd_fiber.decoded;
      if (has_base && has_hd) ++fiber_hd;
      else if (has_base) ++fiber_sd_only;
      else ++fiber_dark;
    }
    std::printf("p = %.2f   | %5.1f%%         | %5.1f%%         | "
                "%zu HD, %zu SD-only, %zu dark\n",
                p, base_all.percent(), hd_fiber.percent(), fiber_hd,
                fiber_sd_only, fiber_dark);
  }

  std::printf(
      "\nGraceful degradation: as failures mount, fiber viewers drop from HD\n"
      "to SD well before anyone loses the stream entirely — the layers fail\n"
      "independently, and the base layer behaves exactly like the Theorem 4\n"
      "analysis says (loss probability ~ pd, regardless of audience size).\n");
  return 0;
}
