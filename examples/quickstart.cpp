// Quickstart: build a curtain overlay, broadcast a message with network
// coding, and verify every peer decodes it.
//
//   $ ./quickstart
//
// Walks through the three core objects:
//   CurtainServer  — runs the hello/good-bye/repair protocols over matrix M
//   simulate_broadcast — pushes real RLNC packets through the overlay
//   FileEncoder/FileDecoder — the end-host codec

#include <cstdio>
#include <string>

#include "coding/file_codec.hpp"
#include "overlay/curtain_server.hpp"
#include "overlay/flow_graph.hpp"
#include "sim/broadcast.hpp"
#include "util/rng.hpp"

using namespace ncast;

int main() {
  // --- 1. Build the overlay -------------------------------------------------
  // Server with k = 8 unit-bandwidth threads; every client clips d = 3.
  const std::uint32_t k = 8, d = 3;
  overlay::CurtainServer server(k, d, Rng(/*seed=*/42));

  std::printf("Joining 25 peers...\n");
  for (int i = 0; i < 25; ++i) {
    const auto ticket = server.join();
    if (i < 3) {
      std::printf("  peer %u clipped threads [", ticket.node);
      for (std::size_t t = 0; t < ticket.threads.size(); ++t) {
        std::printf("%s%u", t ? " " : "", ticket.threads[t]);
      }
      std::printf("], %zu parent(s)\n", ticket.parents.size());
    }
  }

  // Every peer's broadcast capacity equals its max-flow from the server.
  const auto fg = build_flow_graph(server.matrix());
  std::printf("Every peer has connectivity %lld (= d)\n",
              static_cast<long long>(node_connectivity(fg, 0)));

  // --- 2. Broadcast with network coding -------------------------------------
  sim::BroadcastConfig cfg;
  cfg.generation_size = 8;  // packets per generation
  cfg.symbols = 32;         // payload bytes per packet
  cfg.seed = 7;
  const auto report = sim::simulate_broadcast(server.matrix(), cfg);
  std::printf("Broadcast %zu rounds: %.0f%% of peers decoded, 0 corrupted\n",
              report.rounds, report.decoded_fraction() * 100);

  // --- 3. End-host file codec ------------------------------------------------
  const std::string message =
      "Peer-to-peer broadcast at min-cut capacity, via random linear "
      "network coding (Jain, Lovasz, Chou; PODC 2005).";
  std::vector<std::uint8_t> bytes(message.begin(), message.end());

  Rng rng(11);
  coding::FileEncoder encoder(bytes, /*generation_size=*/4, /*symbols=*/16);
  coding::FileDecoder decoder(encoder.plan());
  std::size_t packets = 0;
  while (!decoder.complete()) {
    decoder.absorb(encoder.emit_round_robin(rng));
    ++packets;
  }
  const auto out = decoder.data();
  std::printf("File codec: decoded %zu bytes from %zu coded packets: \"%s\"\n",
              out.size(), packets,
              std::string(out.begin(), out.end()).c_str());
  return 0;
}
