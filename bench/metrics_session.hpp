#pragma once
// MetricsSession: machine-readable telemetry for the experiment harness.
// Each bench binary opens one session; on destruction (or an explicit
// write()) it dumps BENCH_<name>.json into the working directory containing
// the run id, the experiment parameters, every registered counter / gauge /
// histogram (with p50/p90/p99), and the result tables that were printed to
// the terminal. These files are the repo's perf trajectory: future PRs prove
// speedups by diffing them. Schema: "ncast.bench.v1", documented in
// docs/observability.md and enforced by tools/bench_validate.cpp.
//
// This header deliberately depends only on obs + util so the google-benchmark
// binaries (which do not link the overlay stack) can use it too.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace ncast::bench {

/// True when NCAST_BENCH_SMOKE is set in the environment: benches that
/// support it shrink their workloads to seconds so CI can exercise the whole
/// emit-and-validate pipeline on every run.
inline bool smoke() {
  const char* s = std::getenv("NCAST_BENCH_SMOKE");
  return s != nullptr && *s != '\0' && *s != '0';
}

/// One numeric line ("VmHWM:   123 kB" -> 123) from /proc/self/status, or
/// 0 when the file or field is unavailable (non-Linux, masked procfs).
inline std::uint64_t proc_status_field(const char* field) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  const std::size_t field_len = std::strlen(field);
  std::uint64_t value = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      value = std::strtoull(line + field_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return value;
#else
  (void)field;
  return 0;
#endif
}

/// Peak resident set size of this process in bytes: /proc VmHWM where
/// available, getrusage otherwise, 0 when neither works. The scale story's
/// second axis — BENCH_scale budgets memory per node, not just wall clock.
inline std::uint64_t peak_rss_bytes() {
  if (const std::uint64_t kb = proc_status_field("VmHWM"); kb != 0) {
    return kb * 1024;
  }
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

/// Threads currently alive in this process (1 when procfs is unavailable).
/// MetricsSession samples this at construction and at every param/note/table
/// call and keeps the peak: worker pools (ShardedEngine) are usually torn
/// down before the session flushes, so a write-time sample would miss them.
inline std::uint64_t process_thread_count() {
  const std::uint64_t n = proc_status_field("Threads");
  return n != 0 ? n : 1;
}

class MetricsSession {
 public:
  explicit MetricsSession(std::string name) : name_(std::move(name)) {
    // Run ids exist to tell apart runs of the same bench in telemetry, so the
    // wall clock is the entropy — deliberately, and nowhere near any
    // experiment draw. The 16-bit suffix is a splitmix-style hash of
    // (time, name): unlike the unseeded std::rand() it replaces, it actually
    // differs between same-second runs of different benches.
    const auto wall = static_cast<std::uint64_t>(
        std::time(nullptr));  // ncast:allow(determinism.wall_clock): run ids must differ across runs; never feeds results
    std::uint64_t z = wall ^ 0x9e3779b97f4a7c15ULL;
    for (const char c : name_) {
      z = (z ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    char id[64];
    std::snprintf(id, sizeof id, "%s-%" PRIx64 "-%u", name_.c_str(), wall,
                  static_cast<unsigned>(z & 0xffffu));
    run_id_ = id;
  }

  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;

  ~MetricsSession() { write(); }

  /// Records an experiment parameter (k, d, n, seed, ...). Integral values
  /// are stored as JSON integers, floating point as numbers, anything
  /// string-like as strings.
  template <typename T>
  void param(const std::string& key, const T& value) {
    sample_threads();
    params_.emplace_back(key, render(value));
  }

  /// Records a headline result value (decoded fraction, mean rate, ...) —
  /// same encoding as param(), separate JSON section.
  template <typename T>
  void note(const std::string& key, const T& value) {
    sample_threads();
    notes_.emplace_back(key, render(value));
  }

  /// Embeds a printed result table into the JSON dump under `id`.
  void add_table(const std::string& id, const Table& table) {
    sample_threads();
    tables_.emplace_back(id, table);
  }

  const std::string& run_id() const { return run_id_; }
  std::string path() const { return "BENCH_" + name_ + ".json"; }

  /// Writes the snapshot; idempotent (the destructor is a no-op afterwards).
  /// Failures are reported on stderr but never crash a finishing bench.
  void write() {
    if (written_) return;
    written_ = true;

    obs::JsonWriter w;
    w.begin_object();
    w.key("schema").value("ncast.bench.v1");
    w.key("bench").value(name_);
    w.key("run_id").value(run_id_);
    w.key("smoke").value(smoke());
    // Telemetry provenance: whether the obs kill switch was compiled in and
    // how the trace ring ended the run. bench_compare refuses to diff runs
    // whose smoke/obs_enabled flags disagree, and nonzero dropped_events
    // flags a trace whose span trees may be missing their heads.
    w.key("obs_enabled").value(NCAST_OBS_ENABLED != 0);
    w.key("trace_capacity").value(static_cast<std::uint64_t>(obs::trace().capacity()));
    w.key("trace_dropped_events").value(obs::trace().dropped_events());
    // Resource footprint: the scale benches budget peak memory alongside
    // wall clock, and worker_threads is the peak pool size observed over the
    // session's lifetime (0 = the run stayed single-threaded throughout).
    sample_threads();
    w.key("peak_rss_bytes").value(peak_rss_bytes());
    w.key("worker_threads").value(peak_threads_ - 1);

    w.key("params").begin_object();
    for (const auto& [key, rendered] : params_) w.key(key).raw_value(rendered);
    w.end_object();

    w.key("notes").begin_object();
    for (const auto& [key, rendered] : notes_) w.key(key).raw_value(rendered);
    w.end_object();

    obs::metrics().write_json(w);

    w.key("tables").begin_object();
    for (const auto& [id, table] : tables_) {
      w.key(id).begin_object();
      w.key("header").begin_array();
      for (const auto& cell : table.header()) w.value(cell);
      w.end_array();
      w.key("rows").begin_array();
      for (const auto& row : table.rows()) {
        w.begin_array();
        for (const auto& cell : row) w.value(cell);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();

    w.end_object();

    const std::string out_path = path();
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "MetricsSession: cannot write %s\n", out_path.c_str());
      return;
    }
    const std::string& body = w.str();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\n[telemetry] wrote %s (%zu metrics)\n", out_path.c_str(),
                obs::metrics().size());
  }

 private:
  template <typename T>
  static std::string render(const T& value) {
    if constexpr (std::is_same_v<T, bool>) {
      return value ? "true" : "false";
    } else if constexpr (std::is_integral_v<T>) {
      return std::to_string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      return obs::json_number(static_cast<double>(value));
    } else {
      return '"' + obs::json_escape(std::string(value)) + '"';
    }
  }

  void sample_threads() {
    const std::uint64_t t = process_thread_count();
    if (t > peak_threads_) peak_threads_ = t;
  }

  std::string name_;
  std::string run_id_;
  bool written_ = false;
  std::uint64_t peak_threads_ = process_thread_count();
  std::vector<std::pair<std::string, std::string>> params_;  // pre-rendered
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<std::pair<std::string, Table>> tables_;  // copies: tiny
};

}  // namespace ncast::bench
