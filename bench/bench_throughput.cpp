// E8 — throughput comparison (Sections 1, 7, and the practical-coding claim
// of [5]): network coding achieves the min-cut for every receiver, beating
// routing baselines under failures, while Edmonds tree packing is optimal
// only until something fails.
//
// All schemes run over the *same* overlay snapshots:
//   - RLNC capacity        = max-flow (network coding theorem), validated
//                            below by a packet-level simulation
//   - Edmonds tree packing = d edge-disjoint arborescences packed on the
//                            failure-free overlay, NOT recomputed on failure
//   - informed forwarding  = source-side MDS code + local diversity-greedy
//                            fragment forwarding ([3]-style)
//   - naive forwarding     = stream c rides column c forever
// plus the motivating single-path chain and d-ary tree topologies.

#include <cstdio>
#include <map>

#include <cmath>

#include "baselines/forwarding.hpp"
#include "baselines/tree_packing.hpp"
#include "baselines/trees.hpp"
#include "bench_common.hpp"
#include "overlay/flow_graph.hpp"
#include "util/stats.hpp"

using namespace ncast;

int main() {
  const std::uint32_t k = 16, d = 3;
  // Smoke mode (NCAST_BENCH_SMOKE=1) shrinks the workload so CI can exercise
  // the telemetry pipeline end to end in seconds.
  const bool smoke = bench::smoke();
  const std::size_t n = smoke ? 60 : 150;
  const std::uint64_t trials = smoke ? 1 : 3;
  const std::vector<double> ps =
      smoke ? std::vector<double>{0.0, 0.05}
            : std::vector<double>{0.0, 0.02, 0.05, 0.10, 0.15};

  bench::MetricsSession session("throughput");
  session.param("k", k);
  session.param("d", d);
  session.param("n", n);
  session.param("seed", std::uint64_t{0xE80});
  session.param("trials", trials);

  bench::banner(
      "E8: delivered rate vs failure probability (fraction of full rate d)",
      "k = 16, d = 3, N = 150, 3 trials per p. Tree packing is computed once\n"
      "on the healthy overlay and reused (the paper's point: repacking on\n"
      "every failure is impractical).");

  Table table({"p", "RLNC (min-cut)", "tree packing", "informed RS",
               "naive routing", "chain recv%", "3-ary tree recv%"});

  for (const double p : ps) {
    RunningStats rlnc, packing, informed, naive, chain, tree;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      auto m = bench::grow_overlay(k, d, n, 0xE80 + trial);
      const auto mc = baselines::TreePackingMulticast::build(m, d);
      if (!mc) {
        std::fprintf(stderr, "tree packing failed unexpectedly\n");
        return 1;
      }
      Rng rng(0xE81 + trial * 1000 + static_cast<std::uint64_t>(p * 1e4));
      bench::tag_iid_failures(m, p, rng);

      const auto fg = build_flow_graph(m);
      const auto tree_rates = mc->rates_under_failures(m);
      const auto naive_rates = baselines::naive_forwarding_rates(m);
      Rng frng(rng.split());
      const auto informed_rates = baselines::informed_forwarding_rates(m, frng);

      std::map<overlay::NodeId, std::uint32_t> naive_by, informed_by;
      for (const auto& r : naive_rates) naive_by[r.node] = r.rate;
      for (const auto& r : informed_rates) informed_by[r.node] = r.rate;

      for (auto node : m.nodes_in_order()) {
        if (m.row(node).failed) continue;
        const double flow =
            static_cast<double>(node_connectivity(fg, node)) / d;
        rlnc.add(flow);
        packing.add(tree_rates[mc->flow_graph().vertex_of(node)] /
                    static_cast<double>(d));
        naive.add(naive_by[node] / static_cast<double>(d));
        informed.add(informed_by[node] / static_cast<double>(d));
      }
      for (int rep = 0; rep < 20; ++rep) {
        chain.add(baselines::evaluate_chain(n, p, rng).receiving_fraction());
        tree.add(baselines::evaluate_tree(n, 3, p, rng).receiving_fraction());
      }
    }
    table.add_row({fmt(p, 2), fmt(rlnc.mean(), 3), fmt(packing.mean(), 3),
                   fmt(informed.mean(), 3), fmt(naive.mean(), 3),
                   fmt(chain.mean(), 3), fmt(tree.mean(), 3)});
  }
  table.print();
  session.add_table("rate_vs_p", table);

  std::printf(
      "\nReading: the ordering RLNC >= tree packing, informed >= naive must\n"
      "hold at every p; the RLNC-vs-tree-packing gap widens with p (static\n"
      "trees lose whole subtrees; coding re-routes around failures).\n");

  // Packet-level validation: real RLNC packets achieve the min-cut rate.
  bench::banner(
      "E8b: packet-level RLNC validation (achieved rate == min-cut)",
      "Same overlay, p = 0.05; generation size 24. Rate := g / (rounds from\n"
      "first possible arrival to decode). Capped ratio vs min-cut.");  // g = 24
  {
    auto m = bench::grow_overlay(k, d, smoke ? 100 : 400, 0xE82);
    Rng rng(0xE83);
    bench::tag_iid_failures(m, 0.05, rng);
    const std::size_t g = 24;
    bench::ScenarioBuilder scenario(0xE84);
    scenario.generation(g, 16).rounds(0);
    scenario.describe(session, "packet_level_");
    const auto report = scenario.run(m);

    RunningStats ratio;
    std::size_t decoded = 0, eligible = 0;
    for (const auto& o : report.outcomes) {
      if (o.max_flow <= 0) continue;
      ++eligible;
      if (!o.decoded) continue;
      ++decoded;
      const double active =
          std::floor(o.decode_time) - static_cast<double>(o.depth) + 1;
      const double rate = static_cast<double>(g) / active;
      ratio.add(std::min(1.0, rate / static_cast<double>(o.max_flow)));
    }
    Table t({"nodes with min-cut > 0", "decoded", "mean achieved/min-cut"});
    t.add_row({std::to_string(eligible), std::to_string(decoded),
               fmt(ratio.mean(), 3)});
    t.print();
    session.add_table("packet_level", t);
    session.note("decoded", static_cast<std::uint64_t>(decoded));
    session.note("eligible", static_cast<std::uint64_t>(eligible));
    session.note("achieved_over_mincut", ratio.mean());
    std::printf(
        "\nReading: decoded == eligible and the achieved/min-cut ratio near 1\n"
        "reproduce the [5] simulation finding that practical network coding\n"
        "runs at (essentially) broadcast capacity.\n");
  }
  return 0;
}
