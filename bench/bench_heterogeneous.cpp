// E10 — Section 5: heterogeneous bandwidths. The proofs assume equal
// bandwidth, but the design doesn't: DSL users (small d) and T1 users (large
// d) share one curtain. Each class should see its own full connectivity when
// healthy and lose the ~p fraction of its own bandwidth under failures.

#include <cstdio>

#include "bench_common.hpp"
#include "overlay/curtain_server.hpp"
#include "overlay/flow_graph.hpp"
#include "util/stats.hpp"

using namespace ncast;

int main() {
  bench::MetricsSession session("heterogeneous");
  session.param("k", 20);
  session.param("d", "2,4,8");
  session.param("p", 0.03);
  session.param("n", 1500);
  session.param("seed", std::uint64_t{0xEA0});

  bench::banner(
      "E10: heterogeneous user bandwidths (Section 5)",
      "k = 20; population mix: 60% DSL (d=2), 30% cable (d=4), 10% T1 (d=8);\n"
      "N = 1500, p = 0.03. Per-class mean connectivity and loss fraction,\n"
      "250 sampled working nodes per class.");

  const std::uint32_t k = 20;
  const double p = 0.03;
  struct Class {
    const char* name;
    std::uint32_t d;
    double share;
  };
  const std::vector<Class> classes{{"DSL", 2, 0.6}, {"cable", 4, 0.3}, {"T1", 8, 0.1}};

  overlay::CurtainServer server(k, 2, Rng(0xEA0));
  Rng rng(0xEA1);
  std::vector<std::uint32_t> degree_of;  // indexed by node id
  for (int i = 0; i < 1500; ++i) {
    const double u = rng.uniform();
    std::uint32_t d = classes.back().d;
    double acc = 0;
    for (const auto& c : classes) {
      acc += c.share;
      if (u < acc) {
        d = c.d;
        break;
      }
    }
    server.join(d);
    degree_of.push_back(d);
  }
  auto m = server.matrix();
  bench::tag_iid_failures(m, p, rng);
  const auto fg = build_flow_graph(m);

  Table table({"class", "d", "nodes", "mean conn", "mean loss fraction",
               "p", "P(conn < d)"});
  for (const auto& c : classes) {
    RunningStats conn_stats, loss;
    std::size_t lost = 0, sampled = 0;
    std::vector<overlay::NodeId> members;
    for (auto node : m.nodes_in_order()) {
      if (!m.row(node).failed && degree_of[node] == c.d) members.push_back(node);
    }
    rng.shuffle(members);
    for (auto node : members) {
      if (sampled >= 250) break;
      ++sampled;
      const auto conn = node_connectivity(fg, node);
      conn_stats.add(static_cast<double>(conn));
      loss.add((static_cast<double>(c.d) - static_cast<double>(conn)) / c.d);
      if (conn < c.d) ++lost;
    }
    table.add_row({c.name, std::to_string(c.d), std::to_string(sampled),
                   fmt(conn_stats.mean(), 3), fmt(loss.mean(), 4), fmt(p, 4),
                   fmt(static_cast<double>(lost) / sampled, 4)});
  }
  table.print();
  session.add_table("per_class", table);
  std::printf(
      "\nReading: every class's loss fraction hugs p — heterogeneous degrees\n"
      "coexist without anyone subsidizing anyone (each unit thread carries\n"
      "1/d of that user's bandwidth). P(conn < d) scales like p*d per class.\n");
  return 0;
}
