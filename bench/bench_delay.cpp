// E7 — Section 6: delay vs cycles.
//
// The curtain overlay is acyclic (no throughput loss from delay spread) but
// its depth — hence delivery delay — grows linearly in N. The random-graph
// variant (each newcomer inserts itself into d random edges, tolerating
// cycles) brings depth down to O(log N).

#include <cstdio>

#include "bench_common.hpp"
#include "graph/digraph.hpp"
#include "overlay/flow_graph.hpp"
#include "overlay/random_graph.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

struct DepthStats {
  double mean = 0;
  std::int64_t max = 0;
};

DepthStats summarize(const std::vector<std::int64_t>& depths) {
  DepthStats s;
  double sum = 0;
  std::size_t count = 0;
  for (auto d : depths) {
    if (d > 0) {
      sum += static_cast<double>(d);
      s.max = std::max(s.max, d);
      ++count;
    }
  }
  s.mean = count ? sum / static_cast<double>(count) : 0.0;
  return s;
}

}  // namespace

int main() {
  bench::MetricsSession session("delay");
  session.param("k", 32);
  session.param("d", 3);
  session.param("n", "250..4000");
  session.param("seed", std::uint64_t{0xE70});

  bench::banner(
      "E7: delay vs cycles (Section 6)",
      "Curtain (acyclic): depth grows linearly in N. Random-graph variant\n"
      "(insert at d random edges, cycles tolerated): depth grows like log N.\n"
      "k = 32, d = 3.");

  const std::uint32_t k = 32, d = 3;
  Table table({"N", "curtain mean depth", "curtain max", "acyclic?",
               "rand-graph mean depth", "rand-graph max"});

  std::vector<double> ns, curtain_means, log_ns, rg_means;
  for (const std::size_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
    const auto m = bench::grow_overlay(k, d, n, 0xE70 + n);
    const auto fg = build_flow_graph(m);
    const auto cur = summarize(node_depths(fg));
    const bool acyclic = graph::is_acyclic(fg.graph);

    overlay::RandomGraphOverlay rg(d, 4, Rng(0xE71 + n));
    for (std::size_t i = 0; i < n; ++i) rg.join();
    const auto rnd = summarize(rg.depths());

    table.add_row({std::to_string(n), fmt(cur.mean, 1),
                   std::to_string(cur.max), acyclic ? "yes" : "NO",
                   fmt(rnd.mean, 1), std::to_string(rnd.max)});
    ns.push_back(static_cast<double>(n));
    curtain_means.push_back(cur.mean);
    log_ns.push_back(std::log(static_cast<double>(n)));
    rg_means.push_back(rnd.mean);
  }
  table.print();
  session.add_table("depth_vs_n", table);

  const auto lin = fit_line(ns, curtain_means);
  const auto log_fit = fit_line(log_ns, rg_means);
  session.note("curtain_linear_slope", lin.slope);
  session.note("curtain_linear_r2", lin.r2);
  session.note("randgraph_log_slope", log_fit.slope);
  session.note("randgraph_log_r2", log_fit.r2);
  std::printf(
      "\ncurtain: depth = %.4f + %.5f * N        (r^2 = %.3f; mean-depth slope ~ (d/k)/2 = %.5f)\n"
      "random graph: depth = %.2f + %.2f * ln N (r^2 = %.3f)\n"
      "Linear-in-N vs logarithmic-in-N, as Section 6 claims.\n",
      lin.intercept, lin.slope, lin.r2, static_cast<double>(d) / k / 2,
      log_fit.intercept, log_fit.slope, log_fit.r2);

  // E7b — graph depth is not an abstraction: measured first-arrival and
  // decode times under heterogeneous per-link latency scale with it. Same
  // asynchronous link model on both overlays, via the scenario kernel.
  bench::banner(
      "E7b: packet-level delivery delay (async kernel, uniform latency)",
      "N = 500, per-link latency ~ U[0.2, 1.8] periods, g = 8. First-arrival\n"
      "and decode times, curtain vs random graph.");
  {
    const std::size_t pn = 500;
    bench::ScenarioBuilder scenario(0xE75);
    scenario.generation(8, 4).uniform_latency(0.2, 1.8);
    scenario.describe(session, "packet_level_");

    const auto m = bench::grow_overlay(k, d, pn, 0xE76);
    const auto curtain = scenario.run(m);

    overlay::RandomGraphOverlay rg(d, 4, Rng(0xE77));
    for (std::size_t i = 0; i < pn; ++i) rg.join();
    const auto random = scenario.run(rg.graph(), overlay::RandomGraphOverlay::kServer);

    Table pkt({"overlay", "mean first arrival", "max first arrival",
               "mean decode time", "decoded%"});
    const auto add = [&pkt](const char* name, const sim::ScenarioReport& r) {
      RunningStats first, decode;
      double worst = 0;
      for (const auto& o : r.outcomes) {
        if (o.first_arrival >= 0) {
          first.add(o.first_arrival);
          worst = std::max(worst, o.first_arrival);
        }
        if (o.decoded) decode.add(o.decode_time);
      }
      pkt.add_row({name, fmt(first.mean(), 1), fmt(worst, 1),
                   fmt(decode.mean(), 1), fmt(100.0 * r.decoded_fraction(), 1)});
    };
    add("curtain", curtain);
    add("random graph", random);
    pkt.print();
    session.add_table("packet_delay", pkt);
    std::printf(
        "\nReading: the curtain's mean first-arrival time tracks its linear\n"
        "depth; the random graph's tracks its logarithmic depth. Throughput\n"
        "(decoded%%) is unaffected either way — delay and rate decouple.\n");
  }
  return 0;
}
