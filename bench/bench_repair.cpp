// E16 — repair dynamics: the life cycle of a failure, measured on the
// affected nodes. The paper's containment story, told as a timeline:
//   before  — everyone at full rate d
//   failed  — the failed nodes' *children* lose ~1 unit each; grandchildren
//             and strangers feel (almost) nothing
//   repaired — the server splices the children to the failed nodes' parents
//             and deletes the rows: everyone is back to d, exactly
//             (Lemma 1: as if the nodes never joined).

#include <cstdio>
#include <cstring>
#include <set>

#include "bench_common.hpp"
#include "node/protocol_scenario.hpp"
#include "overlay/curtain_server.hpp"
#include "overlay/flow_graph.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

// The message-plane section (E16c) runs on the sharded kernel by default —
// the production runner; pass --sequential for the single-queue
// run_scenario. The runners consume different RNG streams by design, so
// absolute numbers differ between them; each is deterministic in itself.
bool g_sequential = false;
constexpr std::uint32_t kShards = 4;
constexpr std::uint32_t kWorkers = 2;

node::ProtocolScenarioReport run(const node::ProtocolScenarioSpec& spec) {
  return g_sequential ? node::run_scenario(spec)
                      : node::run_scenario_sharded(spec, kShards, kWorkers);
}

struct GroupRates {
  RunningStats children, grandchildren, others;
};

GroupRates measure(const overlay::ThreadMatrix& m, std::uint32_t d,
                   const std::set<overlay::NodeId>& children,
                   const std::set<overlay::NodeId>& grandchildren,
                   std::size_t other_samples, Rng& rng) {
  const auto fg = build_flow_graph(m);
  GroupRates rates;
  auto rate = [&](overlay::NodeId n) {
    return static_cast<double>(node_connectivity(fg, n)) / d;
  };
  std::vector<overlay::NodeId> strangers;
  for (auto n : m.nodes_in_order()) {
    if (m.row(n).failed) continue;
    if (children.count(n)) {
      rates.children.add(rate(n));
    } else if (grandchildren.count(n)) {
      rates.grandchildren.add(rate(n));
    } else {
      strangers.push_back(n);
    }
  }
  rng.shuffle(strangers);
  for (std::size_t i = 0; i < std::min(other_samples, strangers.size()); ++i) {
    rates.others.add(rate(strangers[i]));
  }
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sequential") == 0) g_sequential = true;
  }
  bench::MetricsSession session("repair");
  session.param("k", 24);
  session.param("d", 3);
  session.param("n", 1500);
  session.param("seed", std::uint64_t{0xE160});
  session.param("crashes", 25);
  session.param("runner", g_sequential ? "sequential" : "sharded");

  bench::banner(
      "E16: failure/repair timeline (containment + exact restoration)",
      "k = 24, d = 3, N = 1500; 25 simultaneous crashes, then repair.\n"
      "Mean delivered rate (fraction of d) per blast radius group.");

  const std::uint32_t k = 24, d = 3;
  overlay::CurtainServer server(k, d, Rng(0xE160));
  for (int i = 0; i < 1500; ++i) server.join();

  // Pick 25 victims away from the bottom (so they have children).
  Rng rng(0xE161);
  std::vector<overlay::NodeId> victims;
  while (victims.size() < 25) {
    const auto v = static_cast<overlay::NodeId>(rng.below(1200));
    bool dup = false;
    for (auto u : victims) dup |= (u == v);
    if (!dup) victims.push_back(v);
  }
  std::set<overlay::NodeId> victim_set(victims.begin(), victims.end());
  std::set<overlay::NodeId> children, grandchildren;
  for (auto v : victims) {
    for (auto c : server.matrix().children(v)) {
      if (!victim_set.count(c)) children.insert(c);
    }
  }
  for (auto c : children) {
    for (auto gc : server.matrix().children(c)) {
      if (!victim_set.count(gc) && !children.count(gc)) grandchildren.insert(gc);
    }
  }

  Table table({"phase", "children of failed", "grandchildren", "strangers"});
  auto add_phase = [&](const char* phase, const GroupRates& g) {
    table.add_row({phase, fmt(g.children.mean(), 4), fmt(g.grandchildren.mean(), 4),
                   fmt(g.others.mean(), 4)});
  };

  {
    Rng srng(1);
    add_phase("before failure",
              measure(server.matrix(), d, children, grandchildren, 300, srng));
  }
  for (auto v : victims) server.report_failure(v);
  {
    Rng srng(2);
    add_phase("failed (pre-repair)",
              measure(server.matrix(), d, children, grandchildren, 300, srng));
  }
  for (auto v : victims) server.repair(v);
  {
    Rng srng(3);
    add_phase("after repair",
              measure(server.matrix(), d, children, grandchildren, 300, srng));
  }
  table.print();
  session.add_table("timeline", table);

  std::printf(
      "\nReading: during the outage the children's rate drops by roughly one\n"
      "unit (1/d = %.3f) while grandchildren and strangers barely move —\n"
      "failures are contained to distance one. After repair every column is\n"
      "exactly 1.0000: the overlay is bit-for-bit as if the victims had\n"
      "never joined (Lemma 1).\n",
      1.0 / d);

  // E16b — the same life cycle inside ONE packet-level run: victims crash
  // mid-broadcast and come back before the horizon. Steady-state rank growth
  // (measured between the g/3 and 2g/3 crossings) shows the containment:
  // children slow down during the outage, strangers do not, and everyone
  // still decodes.
  bench::banner(
      "E16b: crash + repair inside one broadcast (scenario kernel)",
      "Same overlay (N = 1500), g = 16, async latency U[0.2, 1.2]. Victims\n"
      "crash at t = 10 and are repaired at t = 60; horizon 400.");
  {
    // Rebuild the pre-failure overlay: the membership repair above deleted
    // the victims' rows, but the packet-level run wants them present.
    overlay::CurtainServer pserver(k, d, Rng(0xE160));
    for (int i = 0; i < 1500; ++i) pserver.join();

    bench::ScenarioBuilder scenario(0xE162);
    scenario.generation(16, 4).uniform_latency(0.2, 1.2).horizon(400.0);
    for (auto v : victims) scenario.crash(10.0, v).repair(60.0, v);
    scenario.describe(session, "packet_level_");
    const auto report = scenario.run(pserver.matrix());

    RunningStats child_rate, stranger_rate;
    std::size_t decoded = 0;
    for (const auto& o : report.outcomes) {
      if (o.decoded) ++decoded;
      if (victim_set.count(o.node)) continue;
      if (o.rate() <= 0.0) continue;
      (children.count(o.node) ? child_rate : stranger_rate).add(o.rate());
    }
    Table pkt({"group", "mean steady-state rate", "overall decoded%"});
    const double dec_pct = 100.0 * static_cast<double>(decoded) /
                           static_cast<double>(report.outcomes.size());
    pkt.add_row({"children of victims", fmt(child_rate.mean(), 3), ""});
    pkt.add_row({"strangers", fmt(stranger_rate.mean(), 3), fmt(dec_pct, 1)});
    pkt.print();
    session.add_table("packet_timeline", pkt);
    session.note("packet_decoded_pct", dec_pct);
    std::printf(
        "\nReading: children pay a visible rate penalty for the outage window\n"
        "they sat through; strangers run at full speed. The repair restores\n"
        "the children's feed mid-run, so the decoded fraction stays ~100%%.\n");
  }

  // E16c — the same life cycle on the MESSAGE plane: no omniscient
  // report_failure call. The crashes are detected by the children's silence
  // timers, the complaints ride (possibly lossy) control links, and the
  // repair interval is protocol time: crash -> complaint -> splice. This is
  // the path the membership-level timeline above idealizes away.
  bench::banner(
      "E16c: repair driven by complaints over the message plane",
      "N = 60 clients on the event kernel (k = 12, d = 3, latency\n"
      "U[0.5, 1.5]), three early joiners crash at t = 50. Repair must\n"
      "emerge from silence detection; control loss delays but never\n"
      "cancels it.");
  {
    Table msg({"control loss%", "repairs done", "crash -> last splice",
               "complaints", "decoded%"});
    for (const double loss : {0.0, 0.10}) {
      RunningStats repairs, conv, complaints, decoded;
      for (std::uint64_t trial = 0; trial < 3; ++trial) {
        node::ProtocolScenarioSpec spec;
        spec.k = 12;
        spec.default_degree = 3;
        spec.repair_delay = 2.0;
        spec.generation_size = 8;
        spec.symbols = 8;
        spec.generations = 2;
        spec.silence_timeout = 8;
        spec.seed = 0xE163 + trial;
        spec.transport.latency = sim::LatencySpec::uniform(0.5, 1.5);
        if (loss > 0.0) {
          spec.transport.control_loss = sim::LossSpec::bernoulli(loss);
        }
        spec.faults.join_burst(1.0, 60, 1.0);
        spec.faults.crash_join_at(50.0, 0);
        spec.faults.crash_join_at(50.0, 1);
        spec.faults.crash_join_at(50.0, 2);

        const auto report = run(spec);
        repairs.add(static_cast<double>(report.repairs_done));
        if (report.repairs_done > 0) conv.add(report.last_repair_time - 50.0);
        complaints.add(static_cast<double>(report.total_complaints()));
        decoded.add(100.0 * report.decoded_fraction());
      }
      msg.add_row({fmt(loss * 100, 0), fmt(repairs.mean(), 1),
                   fmt(conv.mean(), 1), fmt(complaints.mean(), 1),
                   fmt(decoded.mean(), 1)});
    }
    msg.print();
    session.add_table("message_plane", msg);
    std::printf(
        "\nReading: on clean control links the crash -> splice interval is\n"
        "silence_timeout + repair_delay plus one round trip. Lossy control\n"
        "links stretch it (lost complaints wait out a backoff period) and\n"
        "can add spurious repairs (a lost redirect order makes a healthy\n"
        "parent look dead), but the overlay always converges back to a\n"
        "fully-repaired curtain — the retry logic turns loss into delay.\n");
  }
  return 0;
}
