// E12b — the Section 3/7 remark that the central server's membership role
// can be delegated to a gossip protocol ([12]): a newcomer finds hanging
// threads by random walks instead of asking the server. We compare the
// resulting overlay quality (defect, connectivity) and the message costs of
// the two discovery paths.

#include <cstdio>

#include "bench_common.hpp"
#include "overlay/defect.hpp"
#include "overlay/flow_graph.hpp"
#include "overlay/gossip.hpp"
#include "util/stats.hpp"

using namespace ncast;

int main() {
  bench::MetricsSession session("gossip");
  session.param("k", 16);
  session.param("d", 3);
  session.param("n", 800);
  session.param("seed", std::uint64_t{0xED0});
  session.param("p", 0.03);

  bench::banner(
      "E12b: centralized vs gossip peer discovery (Sections 3 & 7)",
      "k = 16, d = 3, N = 800, then iid failures p = 0.03. Gossip: random\n"
      "walks of length 8 over the neighbor relation, tracker fallback.");

  const std::uint32_t k = 16, d = 3;
  const std::size_t n = 800;
  const double p = 0.03;
  const int trials = 10;  // defect lives near the hanging ends; average
                          // across snapshots to tame variance

  RunningStats central_defect, gossip_defect;
  std::uint64_t gossip_messages = 0;

  for (int trial = 0; trial < trials; ++trial) {
    // Centralized build.
    auto central = bench::grow_overlay(k, d, n, 0xED0 + trial);

    // Gossip build.
    overlay::ThreadMatrix gossiped(k);
    Rng grng(0xED100 + trial);
    overlay::GossipConfig gcfg;
    for (overlay::NodeId node = 0; node < n; ++node) {
      std::uint64_t msgs = 0;
      const auto cols = gossip_discover(gossiped, d, gcfg, grng, &msgs);
      gossip_messages += msgs;
      gossiped.append_row(node, cols);
    }

    Rng rng(0xED200 + trial);
    bench::tag_iid_failures(central, p, rng);
    Rng rng2(0xED300 + trial);
    bench::tag_iid_failures(gossiped, p, rng2);

    Rng s1(0xED400 + trial), s2(0xED500 + trial);
    central_defect.add(overlay::sampled_mean_defect(
        overlay::build_flow_graph(central), d, 600, s1));
    gossip_defect.add(overlay::sampled_mean_defect(
        overlay::build_flow_graph(gossiped), d, 600, s2));
  }

  Table table({"discovery", "mean defect (d-tuples)", "loss fraction",
               "msgs/join", "server involved?"});
  table.add_row({"centralized", fmt(central_defect.mean(), 4),
                 fmt(central_defect.mean() / d, 4), fmt(2.0 + d, 1),
                 "every join"});
  table.add_row({"gossip", fmt(gossip_defect.mean(), 4),
                 fmt(gossip_defect.mean() / d, 4),
                 fmt(static_cast<double>(gossip_messages) /
                         static_cast<double>(n * trials), 1),
                 "none"});
  table.print();
  session.add_table("discovery", table);
  session.note("gossip_msgs_per_join",
               static_cast<double>(gossip_messages) /
                   static_cast<double>(n * trials));

  std::printf(
      "\nReading: gossip discovery produces an overlay with defect close to\n"
      "the centralized one (its thread choice is only walk-biased, not\n"
      "structurally different), at the cost of more discovery messages —\n"
      "none of which touch the server. This is the protocol-abstraction\n"
      "point of Section 3: the topology matters, not who hands out threads.\n");
  return 0;
}
