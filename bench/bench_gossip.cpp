// E12b — the Section 3/7 remark that the central server's membership role
// can be delegated to a gossip protocol ([12]): a newcomer finds hanging
// threads by random walks instead of asking the server. We compare the
// resulting overlay quality (defect, connectivity) and the message costs of
// the two discovery paths.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "node/gossip_peer.hpp"
#include "overlay/defect.hpp"
#include "overlay/flow_graph.hpp"
#include "overlay/gossip.hpp"
#include "sim/event_engine.hpp"
#include "util/stats.hpp"

using namespace ncast;

int main() {
  bench::MetricsSession session("gossip");
  session.param("k", 16);
  session.param("d", 3);
  session.param("n", 800);
  session.param("seed", std::uint64_t{0xED0});
  session.param("p", 0.03);

  bench::banner(
      "E12b: centralized vs gossip peer discovery (Sections 3 & 7)",
      "k = 16, d = 3, N = 800, then iid failures p = 0.03. Gossip: random\n"
      "walks of length 8 over the neighbor relation, tracker fallback.");

  const std::uint32_t k = 16, d = 3;
  const std::size_t n = 800;
  const double p = 0.03;
  const int trials = 10;  // defect lives near the hanging ends; average
                          // across snapshots to tame variance

  RunningStats central_defect, gossip_defect;
  std::uint64_t gossip_messages = 0;

  for (int trial = 0; trial < trials; ++trial) {
    // Centralized build.
    auto central = bench::grow_overlay(k, d, n, 0xED0 + trial);

    // Gossip build.
    overlay::ThreadMatrix gossiped(k);
    Rng grng(0xED100 + trial);
    overlay::GossipConfig gcfg;
    for (overlay::NodeId node = 0; node < n; ++node) {
      std::uint64_t msgs = 0;
      const auto cols = gossip_discover(gossiped, d, gcfg, grng, &msgs);
      gossip_messages += msgs;
      gossiped.append_row(node, cols);
    }

    Rng rng(0xED200 + trial);
    bench::tag_iid_failures(central, p, rng);
    Rng rng2(0xED300 + trial);
    bench::tag_iid_failures(gossiped, p, rng2);

    Rng s1(0xED400 + trial), s2(0xED500 + trial);
    central_defect.add(overlay::sampled_mean_defect(
        overlay::build_flow_graph(central), d, 600, s1));
    gossip_defect.add(overlay::sampled_mean_defect(
        overlay::build_flow_graph(gossiped), d, 600, s2));
  }

  Table table({"discovery", "mean defect (d-tuples)", "loss fraction",
               "msgs/join", "server involved?"});
  table.add_row({"centralized", fmt(central_defect.mean(), 4),
                 fmt(central_defect.mean() / d, 4), fmt(2.0 + d, 1),
                 "every join"});
  table.add_row({"gossip", fmt(gossip_defect.mean(), 4),
                 fmt(gossip_defect.mean() / d, 4),
                 fmt(static_cast<double>(gossip_messages) /
                         static_cast<double>(n * trials), 1),
                 "none"});
  table.print();
  session.add_table("discovery", table);
  session.note("gossip_msgs_per_join",
               static_cast<double>(gossip_messages) /
                   static_cast<double>(n * trials));

  std::printf(
      "\nReading: gossip discovery produces an overlay with defect close to\n"
      "the centralized one (its thread choice is only walk-biased, not\n"
      "structurally different), at the cost of more discovery messages —\n"
      "none of which touch the server. This is the protocol-abstraction\n"
      "point of Section 3: the topology matters, not who hands out threads.\n");

  // E12c — the same discovery cost measured as real wire traffic: GossipPeer
  // endpoints on the event kernel, where a join is slot requests, denials
  // with view samples, and grants carrying the stream plan and key bundles.
  // Control bytes use the full Message::control_size() accounting (peer
  // lists and key bundles included), so this is the honest per-join price
  // the walk-count estimate above approximates.
  bench::banner(
      "E12c: gossip join cost on the message plane (event kernel)",
      "Source + 60 peers on a KernelTransport (latency U[0.5, 1.5]); all\n"
      "peers join and stream 2 generations of 8 x 8 B. 3 trials averaged.");
  {
    RunningStats ctrl_per_join, bytes_per_join, settled;
    const std::size_t peers_n = 60;
    for (std::uint64_t trial = 0; trial < 3; ++trial) {
      sim::EventEngine engine;
      node::TransportSpec link;
      link.latency = sim::LatencySpec::uniform(0.5, 1.5);
      node::KernelTransport net(
          engine, link, sim::RngStreams(0xED600 + trial).stream("bench.gossip"));

      node::GossipPeerConfig cfg;
      cfg.want_parents = 3;
      cfg.upload_slots = 3;
      cfg.seed = 0xED600 + trial;
      node::GossipPeerConfig source_cfg = cfg;
      source_cfg.upload_slots = 6;

      std::vector<std::uint8_t> bytes(8 * 8 * 2);
      Rng content_rng(0xED700 + trial);
      for (auto& b : bytes) b = static_cast<std::uint8_t>(content_rng.below(256));
      node::GossipPeer source(1, source_cfg, std::move(bytes), 8, 8);
      source.start(engine, net);

      std::vector<std::unique_ptr<node::GossipPeer>> peers;
      for (std::size_t i = 0; i < peers_n; ++i) {
        const node::Address addr = static_cast<node::Address>(i + 2);
        const node::Address introducer =
            i == 0 ? 1 : static_cast<node::Address>(2 + (trial + i * 7) % i);
        peers.push_back(std::make_unique<node::GossipPeer>(addr, cfg, introducer));
        peers.back()->start(engine, net);
      }
      engine.run_until(60.0);  // join wave settles; streaming continues

      std::size_t with_parents = 0;
      for (const auto& p : peers) {
        if (p->parent_count() > 0) ++with_parents;
      }
      settled.add(100.0 * static_cast<double>(with_parents) /
                  static_cast<double>(peers_n));
      ctrl_per_join.add(static_cast<double>(net.control_messages()) /
                        static_cast<double>(peers_n));
      bytes_per_join.add(static_cast<double>(net.control_bytes()) /
                         static_cast<double>(peers_n));
    }
    Table wire({"peers", "ctrl msgs/join", "ctrl bytes/join", "fed peers%"});
    wire.add_row({std::to_string(peers_n), fmt(ctrl_per_join.mean(), 1),
                  fmt(bytes_per_join.mean(), 0), fmt(settled.mean(), 1)});
    wire.print();
    session.add_table("wire_cost", wire);
    session.note("ctrl_bytes_per_join", bytes_per_join.mean());
    std::printf(
        "\nReading: a message-level join costs more than the walk count\n"
        "suggests — denials carry view samples (peer lists) and every grant\n"
        "ships the stream plan, all of which the control-byte accounting now\n"
        "prices. The per-join byte figure is the number to compare against\n"
        "the tracker's O(d) redirect orders in bench_trackerless.\n");
  }
  return 0;
}
