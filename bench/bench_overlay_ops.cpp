// E12c — cost of the server's own data structure (google-benchmark): how
// expensive are joins, leaves, repairs, and flow-graph extraction as the
// matrix grows? The paper's server does O(d) *messages* per event; this
// measures the local CPU cost behind them.

#include <benchmark/benchmark.h>

#include "metrics_session.hpp"

#include "overlay/curtain_server.hpp"
#include "overlay/flow_graph.hpp"

namespace {

using namespace ncast;

overlay::CurtainServer grown(std::size_t n) {
  overlay::CurtainServer server(32, 3, Rng(1));
  for (std::size_t i = 0; i < n; ++i) server.join();
  return server;
}

void BM_Join(benchmark::State& state) {
  auto server = grown(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto t = server.join();
    benchmark::DoNotOptimize(t.node);
    state.PauseTiming();
    server.leave(t.node);  // keep N constant
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Join)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_LeaveGraceful(benchmark::State& state) {
  auto server = grown(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    const auto t = server.join();
    state.ResumeTiming();
    server.leave(t.node);
  }
}
BENCHMARK(BM_LeaveGraceful)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_FailAndRepair(benchmark::State& state) {
  auto server = grown(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    const auto t = server.join();
    state.ResumeTiming();
    server.report_failure(t.node);
    server.repair(t.node);
  }
}
BENCHMARK(BM_FailAndRepair)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_BuildFlowGraph(benchmark::State& state) {
  const auto server = grown(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto fg = overlay::build_flow_graph(server.matrix());
    benchmark::DoNotOptimize(fg.graph.edge_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildFlowGraph)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_NodeConnectivity(benchmark::State& state) {
  const auto server = grown(static_cast<std::size_t>(state.range(0)));
  const auto fg = overlay::build_flow_graph(server.matrix());
  overlay::NodeId node = static_cast<overlay::NodeId>(state.range(0)) / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay::node_connectivity(fg, node));
  }
}
BENCHMARK(BM_NodeConnectivity)->Arg(1000)->Arg(4000)->Arg(16000);

}  // namespace

// Expanded BENCHMARK_MAIN() with a MetricsSession wrapped around the run so
// the registry counters (server.*, net.*) land in BENCH_overlay_ops.json.
int main(int argc, char** argv) {
  ncast::bench::MetricsSession session("overlay_ops");
  session.param("k", 32);
  session.param("d", 3);
  session.param("n", "1000..16000");
  session.param("seed", std::uint64_t{1});
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
