// E19 — the repair interval as the operational knob behind `p`.
//
// The paper defines p as "the probability that a node fails non-ergodically
// within the repair interval" — so for a fixed crash rate, the operator
// chooses p by choosing how fast repairs run. This bench sweeps the repair
// delay under steady churn and shows the mean bandwidth loss of the working
// population tracking p_eff * d / d = p_eff, where p_eff is the measured
// fraction of rows awaiting repair (crash rate x repair interval).

#include <cstdio>

#include "bench_common.hpp"
#include "overlay/flow_graph.hpp"
#include "sim/churn.hpp"
#include "util/stats.hpp"

using namespace ncast;

int main() {
  bench::MetricsSession session("repair_interval");
  session.param("k", 24);
  session.param("d", 3);
  session.param("n", 600);  // steady population
  session.param("seed", std::uint64_t{0xE190});
  session.param("repair_delay", "0.25..8.0");

  bench::banner(
      "E19: repair interval drives p (operational knob)",
      "k = 24, d = 3, steady population ~600, 20% of departures are crashes.\n"
      "Sweep the repair delay; measure the standing fraction of failed rows\n"
      "(p_eff) and the mean loss fraction of sampled working nodes.");

  Table table({"repair delay", "p_eff (failed rows)", "mean loss fraction",
               "p_eff (predicted loss)", "P(conn < d)"});

  for (const double delay : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    sim::ChurnConfig cfg;
    cfg.arrival_rate = 60.0;
    cfg.mean_lifetime = 10.0;
    cfg.failure_fraction = 0.2;
    cfg.repair_delay = delay;
    cfg.horizon = 60.0;
    cfg.max_population = 600;

    overlay::CurtainServer server(24, 3, Rng(0));
    sim::run_churn(24, 3, overlay::InsertPolicy::kAppend, cfg,
                   0xE190 + static_cast<std::uint64_t>(delay * 100), &server);

    const auto& m = server.matrix();
    const double p_eff =
        static_cast<double>(m.failed_count()) /
        static_cast<double>(std::max<std::size_t>(m.row_count(), 1));

    const auto fg = build_flow_graph(m);
    Rng rng(0xE191 + static_cast<std::uint64_t>(delay * 100));
    std::vector<overlay::NodeId> working;
    for (auto n : m.nodes_in_order()) {
      if (!m.row(n).failed) working.push_back(n);
    }
    rng.shuffle(working);
    RunningStats loss;
    std::size_t degraded = 0;
    const std::size_t samples = std::min<std::size_t>(300, working.size());
    for (std::size_t i = 0; i < samples; ++i) {
      const auto conn = node_connectivity(fg, working[i]);
      loss.add((3.0 - static_cast<double>(conn)) / 3.0);
      if (conn < 3) ++degraded;
    }

    table.add_row({fmt(delay, 2), fmt(p_eff, 4), fmt(loss.mean(), 4),
                   fmt(p_eff, 4),
                   fmt(static_cast<double>(degraded) / samples, 4)});
  }
  table.print();
  session.add_table("loss_vs_delay", table);

  std::printf(
      "\nReading: the standing failed fraction p_eff grows linearly with the\n"
      "repair delay (crash rate x interval), and the working population's\n"
      "mean loss fraction tracks p_eff — Theorem 4 with p under the\n"
      "operator's control. Fast repair buys a small p at a control-plane\n"
      "cost that bench_server_load showed is O(d) per event; slow repair\n"
      "saves messages and pays in standing bandwidth loss.\n");
  return 0;
}
