// E18 — generation-scheduling ablation for multi-generation swarms. The
// practical-coding framework [5] leaves open which generation a relay should
// serve on each transmission. This ablation measures three local policies on
// the same curtain swarm:
//
//   sequential   — always the lowest-indexed generation with data
//   round-robin  — rotate a per-node cursor across generations with data
//   random       — uniform among generations with data
//
// Deterministic policies interact badly with the static edge order: the
// cursor orbit can lock an edge into a residue class of generations and
// starve a descendant forever (we hit exactly this while building the
// file-distribution example). The ablation quantifies it.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "coding/encoder.hpp"
#include "coding/recoder.hpp"
#include "gf/gf256.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

using Gf = gf::Gf256;

enum class Policy { kSequential, kRoundRobin, kRandom };

struct Outcome {
  double completed = 0;       ///< fraction of peers with the whole file
  double mean_progress = 0;   ///< mean fraction of total rank
  std::size_t rounds_to_90 = 0;  ///< rounds until 90% of peers complete (0 = never)
};

Outcome run(Policy policy, std::uint64_t seed) {
  const std::uint32_t k = 12, d = 3;
  const std::size_t peers = 50, generations = 8, g = 8, symbols = 8;
  Rng rng(seed);

  auto m = bench::grow_overlay(k, d, peers, seed ^ 0x515);
  const auto edges = m.edges();

  // Source.
  std::vector<coding::SourceEncoder<Gf>> encoders;
  for (std::size_t gen = 0; gen < generations; ++gen) {
    std::vector<std::vector<std::uint8_t>> source(g, std::vector<std::uint8_t>(symbols));
    for (auto& row : source) {
      for (auto& b : row) b = static_cast<std::uint8_t>(rng.below(256));
    }
    encoders.emplace_back(static_cast<std::uint32_t>(gen), std::move(source));
  }

  struct Peer {
    std::vector<coding::Recoder<Gf>> bufs;
    std::size_t cursor = 0;
  };
  std::map<overlay::NodeId, Peer> swarm;
  for (auto n : m.nodes_in_order()) {
    Peer p;
    for (std::size_t gen = 0; gen < generations; ++gen) {
      p.bufs.emplace_back(static_cast<std::uint32_t>(gen), g, symbols);
    }
    swarm.emplace(n, std::move(p));
  }

  auto pick = [&](Peer& p) -> coding::Recoder<Gf>* {
    std::size_t with_data = 0;
    for (auto& b : p.bufs) {
      if (b.rank() > 0) ++with_data;
    }
    if (with_data == 0) return nullptr;
    switch (policy) {
      case Policy::kSequential:
        for (auto& b : p.bufs) {
          if (b.rank() > 0 && !b.complete()) return &b;
        }
        for (auto& b : p.bufs) {
          if (b.rank() > 0) return &b;
        }
        return nullptr;
      case Policy::kRoundRobin:
        for (std::size_t step = 0; step < p.bufs.size(); ++step) {
          auto& b = p.bufs[p.cursor];
          p.cursor = (p.cursor + 1) % p.bufs.size();
          if (b.rank() > 0) return &b;
        }
        return nullptr;
      case Policy::kRandom: {
        std::size_t target = rng.below(with_data);
        for (auto& b : p.bufs) {
          if (b.rank() > 0 && target-- == 0) return &b;
        }
        return nullptr;
      }
    }
    return nullptr;
  };

  const std::size_t needed = generations * g;
  const std::size_t max_rounds = 1500;
  Outcome out;
  for (std::size_t round = 1; round <= max_rounds; ++round) {
    std::vector<std::pair<overlay::NodeId, coding::CodedPacket<Gf>>> mail;
    for (const auto& e : edges) {
      if (e.from == overlay::kServerNode) {
        // The server always serves a random generation (the fair reference;
        // the ablation is about the *relays*).
        const auto gen = rng.below(generations);
        mail.emplace_back(e.to, encoders[gen].emit(rng));
        continue;
      }
      auto& peer = swarm.at(e.from);
      if (auto* buf = pick(peer)) {
        if (auto p = buf->emit(rng)) mail.emplace_back(e.to, std::move(*p));
      }
    }
    for (auto& [to, p] : mail) swarm.at(to).bufs[p.generation].absorb(p);

    std::size_t complete = 0;
    for (auto& [node, peer] : swarm) {
      bool all = true;
      for (auto& b : peer.bufs) all &= b.complete();
      if (all) ++complete;
    }
    if (out.rounds_to_90 == 0 &&
        complete * 10 >= peers * 9) {
      out.rounds_to_90 = round;
    }
    if (complete == peers) break;
  }

  std::size_t complete = 0;
  double progress = 0;
  for (auto& [node, peer] : swarm) {
    std::size_t rank = 0;
    bool all = true;
    for (auto& b : peer.bufs) {
      rank += b.rank();
      all &= b.complete();
    }
    if (all) ++complete;
    progress += static_cast<double>(rank) / static_cast<double>(needed);
  }
  out.completed = static_cast<double>(complete) / static_cast<double>(peers);
  out.mean_progress = progress / static_cast<double>(peers);
  return out;
}

}  // namespace

int main() {
  bench::MetricsSession session("scheduling");
  session.param("k", 12);
  session.param("d", 3);
  session.param("n", 50);  // peers
  session.param("seed", std::uint64_t{0xE180});
  session.param("generations", 8);
  session.param("generation_size", 8);

  bench::banner(
      "E18: generation scheduling ablation (multi-generation swarms)",
      "k = 12, d = 3, 50 peers, 8 generations of 8 packets. Which generation\n"
      "should a relay serve? 4 trials per policy, 1500-round budget.");

  Table table({"policy", "completed%", "mean progress%", "rounds to 90%"});
  for (const auto& [name, policy] :
       std::vector<std::pair<const char*, Policy>>{
           {"sequential (lowest first)", Policy::kSequential},
           {"round-robin cursor", Policy::kRoundRobin},
           {"uniform random", Policy::kRandom}}) {
    RunningStats completed, progress, to90;
    int never = 0;
    for (std::uint64_t trial = 0; trial < 4; ++trial) {
      const auto out = run(policy, 0xE180 + trial);
      completed.add(out.completed * 100);
      progress.add(out.mean_progress * 100);
      if (out.rounds_to_90 == 0) {
        ++never;
      } else {
        to90.add(static_cast<double>(out.rounds_to_90));
      }
    }
    table.add_row({name, fmt(completed.mean(), 1), fmt(progress.mean(), 1),
                   never == 4 ? "never" : fmt(to90.mean(), 0)});
  }
  table.print();
  session.add_table("policies", table);

  std::printf(
      "\nReading: strict sequential service collapses — every relay keeps\n"
      "serving generation 0 (always refreshed from upstream, never 'done'\n"
      "from the relay's local view), starving the others. A per-node\n"
      "round-robin cursor works here and is fastest, but the same idea one\n"
      "level down — a per-edge rotation over a fixed edge order — provably\n"
      "locks edges into residue classes of generations and starves\n"
      "descendants (we hit it twice while building the examples; gcd(edge\n"
      "count, generations) > 1 is all it takes). Uniform random is within\n"
      "~1.4x of the best, needs no state, and has no such failure modes —\n"
      "the same reason the paper randomizes thread choice and coefficients.\n");
  return 0;
}
