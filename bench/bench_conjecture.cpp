// E14 — the Section 7 conjecture: "the probability of losing kappa << d
// threads of connectivity must be about the same as the probability of
// losing kappa parents", i.e. failures are locally contained at every order,
// not just in expectation.
//
// If a node only ever felt its parents, the defect of its d-tuple would be
// binomial: P(defect >= kappa) ~ C(d,kappa) p^kappa. We measure the actual
// tail of the defect distribution (exactly, via the B_j decomposition of the
// polymatroid state) and compare it with the parents-only binomial tail.

#include <cmath>
#include <cstdio>
#include <tuple>

#include "bench_common.hpp"
#include "overlay/polymatroid.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

double binomial_tail(std::uint32_t d, double p, std::uint32_t kappa) {
  // P(Binomial(d, p) >= kappa)
  double tail = 0.0;
  for (std::uint32_t j = kappa; j <= d; ++j) {
    double c = 1.0;
    for (std::uint32_t i = 0; i < j; ++i) {
      c = c * static_cast<double>(d - i) / static_cast<double>(i + 1);
    }
    tail += c * std::pow(p, j) * std::pow(1.0 - p, d - j);
  }
  return tail;
}

}  // namespace

int main() {
  bench::MetricsSession session("conjecture");
  session.param("k", "12..20");
  session.param("d", "3..4");
  session.param("p", "0.02..0.05");
  session.param("n", 4000);  // arrivals per config
  session.param("seed", std::uint64_t{0xE140});

  bench::banner(
      "E14: Section 7 conjecture (losing kappa threads ~ losing kappa parents)",
      "k = 16, time-averaged P(random d-tuple has defect >= kappa) vs the\n"
      "parents-only binomial tail C(d,kappa) p^kappa(1-p)^(d-kappa)+...;\n"
      "ratios near 1 mean failures are contained at every order.");

  Table table({"k", "d", "p", "kappa", "P(defect >= kappa)", "binomial tail",
               "ratio"});

  for (const auto& [k, d, p] :
       std::vector<std::tuple<std::uint32_t, std::uint32_t, double>>{
           {16, 3, 0.02}, {16, 3, 0.05}, {16, 4, 0.05},
           {12, 3, 0.05}, {20, 3, 0.05}}) {
    overlay::PolymatroidCurtain pc(k);
    Rng rng(0xE140 + d + static_cast<std::uint64_t>(p * 1e4));
    const double a =
        static_cast<double>(overlay::PolymatroidCurtain::tuple_count(k, d));

    // Time-average the defect histogram over the stationary process.
    std::vector<double> tail_avg(d + 1, 0.0);
    const std::size_t steps = 4000, warmup = 400;
    std::size_t samples = 0;
    for (std::size_t t = 0; t < steps; ++t) {
      pc.join_random(d, p, rng);
      if (t < warmup || t % 5 != 0) continue;
      const auto hist = pc.defect_histogram(d);
      ++samples;
      // Tail: fraction of tuples with defect >= kappa.
      double acc = 0.0;
      for (std::uint32_t kappa = d + 1; kappa-- > 0;) {
        acc += static_cast<double>(hist[kappa]) / a;
        tail_avg[kappa] += acc;
      }
    }
    for (auto& v : tail_avg) v /= static_cast<double>(samples);

    for (std::uint32_t kappa = 1; kappa <= std::min(d, 3u); ++kappa) {
      const double binom = binomial_tail(d, p, kappa);
      table.add_row({std::to_string(k), std::to_string(d), fmt(p, 3),
                     std::to_string(kappa), fmt_sci(tail_avg[kappa], 2),
                     fmt_sci(binom, 2), fmt(tail_avg[kappa] / binom, 2)});
    }
  }
  table.print();
  session.add_table("tail_vs_binomial", table);

  std::printf(
      "\nReading: kappa = 1 restates Theorem 4 (ratio ~ 1). The kappa >= 2\n"
      "rows are what the paper *conjectures*. The measured excess over the\n"
      "binomial tail comes from shared parents: at finite k one failed node\n"
      "often owns several of a tuple's hanging ends, so 'kappa parents' are\n"
      "not independent — compare the d = 3, p = 0.05 rows across k = 12, 16,\n"
      "20: the ratio falls toward 1 as k grows past d^2, supporting the\n"
      "conjecture in its intended k >> d^2 regime.\n");
  return 0;
}
