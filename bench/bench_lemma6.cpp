// E4 — Lemma 6: a single arrival changes the total defect B by at most
// (d^2/k) A, and the bound is attained by the arrival of a single failed
// node at the beginning.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "overlay/polymatroid.hpp"
#include "util/stats.hpp"

using namespace ncast;

int main() {
  bench::MetricsSession session("lemma6");
  session.param("k", "8..16");
  session.param("d", "2..4");
  session.param("p", 0.15);
  session.param("n", 3000);  // arrivals per config
  session.param("seed", std::uint64_t{0xE40000});

  bench::banner(
      "E4: Lemma 6 (per-step defect jump bounded by (d^2/k) A; bound tight)",
      "Track |B' - B| over 3000 arrivals at p = 0.15; also verify the first\n"
      "failed arrival attains the bound exactly.");

  Table table({"k", "d", "bound (d^2/k)A", "max |B'-B| seen", "max/bound",
               "first-failure jump", "tight?"});

  for (const auto& [k, d] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {8, 2}, {12, 2}, {12, 3}, {16, 2}, {16, 3}, {16, 4}}) {
    const double a =
        static_cast<double>(overlay::PolymatroidCurtain::tuple_count(k, d));
    const double bound = static_cast<double>(d) * d / k * a;

    // Tightness: one failed node at the very beginning adds exactly
    // sum_{T: T/\D != 0} |T/\D| = (d^2/k) A defect.
    overlay::PolymatroidCurtain first(k);
    const overlay::PolymatroidCurtain::Mask dmask = (1u << d) - 1u;
    first.join(dmask, /*failed=*/true);
    const double first_jump = static_cast<double>(first.total_defect(d));

    // Random evolution: the jump must never exceed the bound.
    overlay::PolymatroidCurtain pc(k);
    Rng rng(0xE40000 + k * 10 + d);
    double prev = 0.0, max_jump = 0.0;
    for (int t = 0; t < 3000; ++t) {
      pc.join_random(d, 0.15, rng);
      const double b = static_cast<double>(pc.total_defect(d));
      max_jump = std::max(max_jump, std::abs(b - prev));
      prev = b;
    }

    table.add_row({std::to_string(k), std::to_string(d), fmt(bound, 1),
                   fmt(max_jump, 1), fmt(max_jump / bound, 3),
                   fmt(first_jump, 1),
                   std::abs(first_jump - bound) < 1e-6 ? "yes" : "NO"});
  }
  table.print();
  session.add_table("jump_bound", table);
  std::printf(
      "\nReading: max/bound <= 1 everywhere (the lemma); the first-failure\n"
      "jump equals the bound exactly (its tightness remark).\n");
  return 0;
}
