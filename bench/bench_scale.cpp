// BENCH_scale — the million-node run: the scale claim of the SoA/CSR
// overlay state and the sharded event kernel, measured together. A
// 1,000,000-client join wave arrives over simulated time, sustained Poisson
// churn (graceful leaves and crashes) follows, and every crash must be
// repaired (complaint -> failure tag -> splice-out) before the horizon.
// Each client owns a kernel lane; joins and churn initiations are
// cross-lane posts into the server's lane, so the run exercises exactly the
// paths the tentpole rebuilt: the order-statistic treap under
// insert-at-random-position, the CSR column arena under heavy splice
// traffic, per-shard event queues, outbox merges, and the conservative
// epoch barrier.
//
// Reported: wall clock, events per second, peak RSS (the telemetry fields
// tools/bench_validate now requires), and convergence — the final matrix
// must hold exactly joins - leaves - repairs working rows and zero failed
// rows. Smoke mode (NCAST_BENCH_SMOKE=1) runs 100k nodes so CI's perf gate
// can hold the committed baseline on every run; the full 1M configuration
// is the locally-run scale proof.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "overlay/curtain_server.hpp"
#include "sim/sharded_engine.hpp"

using namespace ncast;

namespace {

struct ChurnOp {
  double at = 0.0;
  std::uint32_t client = 0;  // index into the join wave
  bool crash = false;        // false = graceful leave
};

std::uint32_t env_u32(const char* name, std::uint32_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return static_cast<std::uint32_t>(std::strtoul(s, nullptr, 10));
}

}  // namespace

int main() {
  const bool smoke = bench::smoke();
  const std::uint32_t n = env_u32("NCAST_SCALE_NODES", smoke ? 100000 : 1000000);
  const std::uint32_t churn_ops = n / 20;
  const std::uint32_t shards = env_u32("NCAST_SCALE_SHARDS", 8);
  const std::uint32_t workers = env_u32("NCAST_SCALE_WORKERS", 0);
  const std::uint32_t k = 64;
  const std::uint32_t d = 3;
  const std::uint64_t seed = 0x5CA1EULL;
  const double join_window = 200.0;   // the wave arrives over [0, 200)
  const double churn_window = 100.0;  // churn runs over [200, 300)
  const double latency = 0.5;         // client -> server post delay
  const double repair_delay = 2.0;
  const double epoch = 0.5;           // == latency: no post ever clamps

  bench::MetricsSession session("scale");
  session.param("k", k);
  session.param("d", d);
  session.param("n", n);
  session.param("seed", seed);
  session.param("shards", shards);
  session.param("workers", workers);
  session.param("churn_ops", churn_ops);
  session.param("epoch", epoch);

  bench::banner(
      "SCALE: million-node join wave + Poisson churn on the sharded kernel",
      "Every client owns a lane; joins and churn are cross-lane posts into\n"
      "the server lane, where the SoA/CSR curtain absorbs them (uniform\n"
      "random insert positions -> worst case for the order index). Crashes\n"
      "must repair before the horizon; the final matrix must balance.");

  sim::ShardedEngine engine(shards, workers, epoch);
  engine.reserve_lanes(static_cast<std::size_t>(n) + 1);

  Rng server_rng(seed);
  overlay::CurtainServer server(k, d, server_rng,
                                overlay::InsertPolicy::kRandomPosition);

  // node_of[i]: the NodeId the server assigned to join-wave client i
  // (written and read only on the server lane).
  std::vector<overlay::NodeId> node_of(n, overlay::kServerNode);
  std::vector<std::uint8_t> gone(n, 0);  // left or crashed (server lane)
  std::uint64_t leaves = 0, crashes = 0, repairs = 0, skipped = 0;
  double last_repair_time = -1.0;

  // Join wave: client i's hello leaves its lane at a deterministic offset
  // and lands on the server lane one latency later.
  for (std::uint32_t i = 0; i < n; ++i) {
    const double at =
        join_window * static_cast<double>(i) / static_cast<double>(n);
    engine.schedule_on(
        static_cast<sim::LaneId>(i + 1), at,
        [&engine, &server, &node_of, i, latency] {
          engine.schedule_on(
              0, engine.now() + latency,
              [&server, &node_of, i] { node_of[i] = server.join().node; });
        });
  }

  // Poisson churn: exponential inter-arrivals drawn up front from the run
  // seed (the draw order is fixed, so the whole schedule is deterministic).
  // Victims are picked uniformly from the wave; by churn time the wave has
  // fully joined, and double-kills are skipped at execution.
  Rng churn_rng(seed ^ 0xC4BA9ULL);
  std::vector<ChurnOp> churn(churn_ops);
  {
    const double rate =
        static_cast<double>(churn_ops) / churn_window;  // ops per sim-second
    double t = join_window + latency + 1.0;
    for (std::uint32_t c = 0; c < churn_ops; ++c) {
      t += churn_rng.exponential(rate);
      churn[c].at = t;
      churn[c].client = static_cast<std::uint32_t>(churn_rng.below(n));
      churn[c].crash = churn_rng.chance(0.5);
    }
  }
  for (const ChurnOp& op : churn) {
    engine.schedule_on(
        static_cast<sim::LaneId>(op.client + 1), op.at,
        [&engine, &server, &node_of, &gone, &leaves, &crashes, &repairs,
         &skipped, &last_repair_time, op, latency, repair_delay] {
          engine.schedule_on(0, engine.now() + latency, [&server, &node_of,
                                                         &gone, &leaves,
                                                         &crashes, &repairs,
                                                         &skipped,
                                                         &last_repair_time,
                                                         &engine, op,
                                                         repair_delay] {
            if (gone[op.client] != 0) {
              ++skipped;  // victim already left or crashed
              return;
            }
            gone[op.client] = 1;
            const overlay::NodeId node = node_of[op.client];
            if (op.crash) {
              ++crashes;
              // Children complain one silence period later; the server tags
              // the row, then splices it out after the repair delay.
              engine.schedule_on(0, engine.now() + 1.0, [&server, &repairs,
                                                         &last_repair_time,
                                                         &engine, node,
                                                         repair_delay] {
                server.report_failure(node);
                engine.schedule_on(
                    0, engine.now() + repair_delay,
                    [&server, &repairs, &last_repair_time, &engine, node] {
                      server.repair(node);
                      ++repairs;
                      last_repair_time = engine.now();
                    });
              });
            } else {
              ++leaves;
              server.leave(node);
            }
          });
        });
  }

  const double horizon =
      join_window + latency + 1.0 + churn_window + 20.0 + repair_delay + 5.0;

  obs::Stopwatch wall;
  const std::size_t executed = engine.run_until(horizon);
  const double wall_s = wall.elapsed_ns() * 1e-9;
  const double events_per_sec =
      wall_s > 0.0 ? static_cast<double>(executed) / wall_s : 0.0;

  const auto& m = server.matrix();
  const std::uint64_t expected_rows =
      static_cast<std::uint64_t>(n) - leaves - repairs;
  const bool converged = m.failed_count() == 0 &&
                         m.row_count() == expected_rows &&
                         server.stats().joins == n &&
                         repairs == crashes;
  // The invariant audit is O(n * d); priced in at smoke scale, sampled out
  // of the 1M run (the balance checks above already catch structural rot).
  const bool invariants_ok = n > 200000 || m.check_invariants();

  const std::uint64_t rss = bench::peak_rss_bytes();
  Table table({"metric", "value"});
  table.add_row({"clients joined", std::to_string(server.stats().joins)});
  table.add_row({"graceful leaves", std::to_string(leaves)});
  table.add_row({"crashes / repairs",
                 std::to_string(crashes) + " / " + std::to_string(repairs)});
  table.add_row({"churn double-kills skipped", std::to_string(skipped)});
  table.add_row({"final working rows", std::to_string(m.working_count())});
  table.add_row({"events executed", std::to_string(executed)});
  table.add_row({"cross-shard handoffs",
                 std::to_string(engine.cross_shard_handoffs())});
  table.add_row({"clamped posts", std::to_string(engine.clamped_posts())});
  table.add_row({"epochs run", std::to_string(engine.epochs_run())});
  table.add_row({"wall clock (s)", fmt(wall_s, 2)});
  table.add_row({"events / s", fmt(events_per_sec, 0)});
  table.add_row({"peak RSS (MiB)",
                 fmt(static_cast<double>(rss) / (1024.0 * 1024.0), 1)});
  table.print();
  session.add_table("scale_run", table);

  session.note("wall_clock_s", wall_s);
  session.note("events_per_sec", events_per_sec);
  session.note("events_executed", executed);
  session.note("peak_rss_mib", static_cast<double>(rss) / (1024.0 * 1024.0));
  session.note("joins", server.stats().joins);
  session.note("leaves", leaves);
  session.note("crashes", crashes);
  session.note("repairs", repairs);
  session.note("last_repair_time", last_repair_time);
  session.note("clamped_posts", engine.clamped_posts());
  session.note("converged", converged);
  session.note("invariants_ok", invariants_ok);

  std::printf(
      "\nReading: the server's curtain absorbed %" PRIu32
      " uniform-position joins and %" PRIu64
      " splice-outs while the sharded kernel moved every hello and complaint\n"
      "across lanes; zero clamped posts (epoch == min latency) and a final\n"
      "matrix that balances to the op count are the correctness half of the\n"
      "scale story, wall clock and peak RSS the capacity half.\n",
      n, leaves + repairs);

  if (!converged || !invariants_ok) {
    std::fprintf(stderr,
                 "bench_scale: FAILED convergence (rows=%zu expected=%" PRIu64
                 " failed=%zu repairs=%" PRIu64 "/%" PRIu64
                 " invariants_ok=%d)\n",
                 m.row_count(), expected_rows, m.failed_count(), repairs,
                 crashes, static_cast<int>(invariants_ok));
    return 1;
  }
  return 0;
}
