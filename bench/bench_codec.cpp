// E13 — codec microbenchmarks (google-benchmark): raw field arithmetic,
// RLNC encode/recode/decode, and the Reed–Solomon baseline. These bound the
// CPU cost per delivered byte of the whole system.

#include <benchmark/benchmark.h>

#include "metrics_session.hpp"

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/recoder.hpp"
#include "coding/reed_solomon.hpp"
#include "gf/dispatch.hpp"
#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"
#include "util/rng.hpp"

namespace {

using ncast::Rng;
using Gf = ncast::gf::Gf256;

void BM_Gf256RegionMadd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> dst(n), src(n);
  Rng rng(1);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.below(256));
  std::uint8_t c = 7;
  for (auto _ : state) {
    Gf::region_madd(dst.data(), src.data(), c, n);
    benchmark::DoNotOptimize(dst.data());
    c = static_cast<std::uint8_t>(c * 3 + 1);
    if (c == 0) c = 1;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Gf256RegionMadd)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Gf2_16RegionMadd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint16_t> dst(n), src(n);
  Rng rng(2);
  for (auto& b : src) b = static_cast<std::uint16_t>(rng.below(65536));
  std::uint16_t c = 7;
  for (auto _ : state) {
    ncast::gf::Gf2_16::region_madd(dst.data(), src.data(), c, n);
    benchmark::DoNotOptimize(dst.data());
    c = static_cast<std::uint16_t>(c * 3 + 1);
    if (c == 0) c = 1;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 2);
}
BENCHMARK(BM_Gf2_16RegionMadd)->Arg(64)->Arg(1024)->Arg(8192);

std::vector<std::vector<std::uint8_t>> random_source(std::size_t g,
                                                     std::size_t symbols,
                                                     Rng& rng) {
  std::vector<std::vector<std::uint8_t>> src(g, std::vector<std::uint8_t>(symbols));
  for (auto& row : src) {
    for (auto& b : row) b = static_cast<std::uint8_t>(rng.below(256));
  }
  return src;
}

void BM_RlncEncode(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  const std::size_t symbols = 1024;
  Rng rng(3);
  ncast::coding::SourceEncoder<Gf> enc(0, random_source(g, symbols, rng));
  for (auto _ : state) {
    auto p = enc.emit(rng);
    benchmark::DoNotOptimize(p.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(symbols));
}
BENCHMARK(BM_RlncEncode)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_RlncDecodeGeneration(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  const std::size_t symbols = 1024;
  Rng rng(4);
  ncast::coding::SourceEncoder<Gf> enc(0, random_source(g, symbols, rng));
  // Pre-generate enough packets (with slack for rare dependencies).
  std::vector<ncast::coding::CodedPacket<Gf>> packets;
  for (std::size_t i = 0; i < g + 8; ++i) packets.push_back(enc.emit(rng));
  for (auto _ : state) {
    ncast::coding::Decoder<Gf> dec(0, g, symbols);
    for (const auto& p : packets) {
      if (dec.complete()) break;
      dec.absorb(p);
    }
    benchmark::DoNotOptimize(dec.rank());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g * symbols));
}
BENCHMARK(BM_RlncDecodeGeneration)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_RlncRecode(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  const std::size_t symbols = 1024;
  Rng rng(5);
  ncast::coding::SourceEncoder<Gf> enc(0, random_source(g, symbols, rng));
  ncast::coding::Recoder<Gf> rec(0, g, symbols);
  while (!rec.complete()) rec.absorb(enc.emit(rng));
  for (auto _ : state) {
    auto p = rec.emit(rng);
    benchmark::DoNotOptimize(p->payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(symbols));
}
BENCHMARK(BM_RlncRecode)->Arg(16)->Arg(32)->Arg(64);

// The allocation-free variant the simulators actually run: one packet whose
// buffers are recycled across emissions. The delta to BM_RlncRecode is the
// cost of per-emission packet allocation.
void BM_RlncRecodeInto(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  const std::size_t symbols = 1024;
  Rng rng(5);
  ncast::coding::SourceEncoder<Gf> enc(0, random_source(g, symbols, rng));
  ncast::coding::Recoder<Gf> rec(0, g, symbols);
  while (!rec.complete()) rec.absorb(enc.emit(rng));
  ncast::coding::CodedPacket<Gf> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.emit_into(out, rng));
    benchmark::DoNotOptimize(out.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(symbols));
}
BENCHMARK(BM_RlncRecodeInto)->Arg(16)->Arg(32)->Arg(64);

void BM_RsEncode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 2 * k;
  const std::size_t len = 1024;
  Rng rng(6);
  std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(len));
  for (auto& d : data) {
    for (auto& b : d) b = static_cast<std::uint8_t>(rng.below(256));
  }
  ncast::coding::ReedSolomon rs(n, k);
  for (auto _ : state) {
    auto frags = rs.encode(data);
    benchmark::DoNotOptimize(frags.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * len));
}
BENCHMARK(BM_RsEncode)->Arg(8)->Arg(16)->Arg(32);

void BM_RsDecodeParityHeavy(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 2 * k;
  const std::size_t len = 1024;
  Rng rng(7);
  std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(len));
  for (auto& d : data) {
    for (auto& b : d) b = static_cast<std::uint8_t>(rng.below(256));
  }
  ncast::coding::ReedSolomon rs(n, k);
  const auto frags = rs.encode(data);
  // Receive only parity fragments: the hardest decode.
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> received;
  for (std::size_t i = k; i < 2 * k; ++i) received.emplace_back(i, frags[i]);
  for (auto _ : state) {
    auto out = rs.decode(received);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * len));
}
BENCHMARK(BM_RsDecodeParityHeavy)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

// Expanded BENCHMARK_MAIN() with a MetricsSession wrapped around the run so
// the registry counters (decoder.*, linalg.*) land in BENCH_codec.json.
int main(int argc, char** argv) {
  ncast::bench::MetricsSession session("codec");
  session.param("k", "g in 16..128");  // generation sizes; no overlay here
  session.param("d", "n/a");
  session.param("n", 1024);  // symbols per packet
  session.param("seed", std::uint64_t{1});
  // Which GF kernel tier these numbers were measured on (see src/gf/dispatch).
  session.param("gf_tier", ncast::gf::tier_name(ncast::gf::active_tier()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
