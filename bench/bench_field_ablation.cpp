// E13b — field-size ablation for the RLNC substrate: the probability that a
// random combination is non-innovative ("wasted") shrinks with field size,
// which is why practical network coding uses GF(2^8)+ rather than XOR-only
// coding. Also measures the per-packet coefficient overhead trade-off.

#include <cstdio>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "bench_common.hpp"
#include "gf/gf2.hpp"
#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

template <typename Field>
void run(const char* name, std::size_t g, Table& table, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<typename Field::value_type>> source(
      g, std::vector<typename Field::value_type>(16));
  for (auto& row : source) {
    for (auto& v : row) {
      v = static_cast<typename Field::value_type>(rng.below(Field::order));
    }
  }
  coding::SourceEncoder<Field> enc(0, source);

  std::size_t wasted = 0, total = 0;
  RunningStats packets_to_decode;
  for (int trial = 0; trial < 120; ++trial) {
    coding::Decoder<Field> dec(0, g, 16);
    std::size_t sent = 0;
    while (!dec.complete()) {
      ++sent;
      ++total;
      if (!dec.absorb(enc.emit(rng))) ++wasted;
    }
    packets_to_decode.add(static_cast<double>(sent));
  }
  const double overhead_bits =
      static_cast<double>(g) * (Field::order == 2 ? 1.0 : std::log2(Field::order));
  table.add_row({name, std::to_string(g),
                 fmt(static_cast<double>(wasted) / static_cast<double>(total), 4),
                 fmt(packets_to_decode.mean(), 2),
                 fmt(packets_to_decode.mean() / static_cast<double>(g), 3),
                 fmt(overhead_bits / 8.0, 1)});
}

}  // namespace

int main() {
  bench::MetricsSession session("field_ablation");
  session.param("k", "g in 8..32");  // generation sizes; no overlay here
  session.param("d", "n/a");
  session.param("n", 120);  // decode trials per row
  session.param("seed", std::uint64_t{0xEE0});

  bench::banner(
      "E13b: field-size ablation (waste probability vs coefficient overhead)",
      "120 decode trials per row; source-direct coding (worst case for small\n"
      "fields is at the rank boundary).");

  Table table({"field", "g", "P(non-innovative)", "packets to decode",
               "stretch", "coeff bytes/packet"});
  for (const std::size_t g : {8u, 16u, 32u}) {
    run<gf::Gf2>("GF(2)", g, table, 0xEE0 + g);
    run<gf::Gf256>("GF(2^8)", g, table, 0xEE1 + g);
    run<gf::Gf2_16>("GF(2^16)", g, table, 0xEE2 + g);
  }
  table.print();
  session.add_table("field_ablation", table);
  std::printf(
      "\nReading: GF(2) wastes ~a constant fraction of transmissions (the\n"
      "expected stretch is sum 1/(1-2^-i) ~ g + 1.6); GF(2^8) wastes ~1/255\n"
      "per packet and GF(2^16) half as much again — at 2x the coefficient\n"
      "overhead. GF(2^8) is the practical sweet spot, as [5] chose.\n");
  return 0;
}
