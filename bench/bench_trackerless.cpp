// E20 — centralized tracker vs fully decentralized membership, measured at
// message level on identical content and population. Section 7 claims the
// server's role "can be decreased still further or even eliminated"; this
// bench prices that elimination: what do joins, steady-state streaming, and
// crash repair cost under each regime?

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "node/driver.hpp"
#include "util/stats.hpp"

using namespace ncast;
using namespace ncast::node;

namespace {

std::vector<std::uint8_t> content(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bytes(8 * 8 * 2);  // 2 generations of 8 x 8
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  return bytes;
}

struct Row {
  std::uint64_t decode_ticks = 0;
  std::uint64_t control = 0;
  std::uint64_t data = 0;
  double recovered = 0;  // decoded fraction after mid-stream crashes
};

Row run_centralized(std::size_t n, std::uint64_t seed) {
  ServerConfig scfg;
  scfg.k = 12;
  scfg.default_degree = 3;
  scfg.repair_delay = 2;
  scfg.generation_size = 8;
  scfg.symbols = 8;
  scfg.seed = seed;
  ServerNode server(scfg, content(seed));
  ClientConfig ccfg;
  ccfg.silence_timeout = 6;
  std::vector<std::unique_ptr<ClientNode>> clients;
  std::vector<ClientNode*> ptrs;
  for (std::size_t i = 0; i < n; ++i) {
    clients.push_back(std::make_unique<ClientNode>(static_cast<Address>(i + 1), ccfg));
    ptrs.push_back(clients.back().get());
  }
  TickDriver driver(server, ptrs);
  for (auto& c : clients) c->join(driver.network());

  Row row;
  driver.run(6);
  driver.crash(*clients[1]);
  driver.crash(*clients[5]);
  driver.run_until_decoded(2000);
  row.decode_ticks = driver.now();
  driver.run(30);  // let repairs finish
  row.control = driver.network().control_messages();
  row.data = driver.network().data_messages();
  std::size_t live = 0, done = 0;
  for (auto& c : clients) {
    if (c->crashed()) continue;
    ++live;
    if (c->decoded()) ++done;
  }
  row.recovered = static_cast<double>(done) / static_cast<double>(live);
  return row;
}

Row run_gossip(std::size_t n, std::uint64_t seed) {
  GossipPeerConfig cfg;
  cfg.want_parents = 3;
  cfg.upload_slots = 3;
  cfg.silence_timeout = 6;
  cfg.seed = seed;
  GossipPeerConfig source_cfg = cfg;
  source_cfg.upload_slots = 6;
  GossipPeer source(1, source_cfg, content(seed), 8, 8);
  std::vector<std::unique_ptr<GossipPeer>> peers;
  std::vector<GossipPeer*> ptrs{&source};
  for (std::size_t i = 0; i < n; ++i) {
    const Address addr = static_cast<Address>(i + 2);
    const Address introducer =
        i == 0 ? 1 : static_cast<Address>(2 + (seed + i * 7) % i);
    peers.push_back(std::make_unique<GossipPeer>(addr, cfg, introducer));
    ptrs.push_back(peers.back().get());
  }
  GossipDriver driver(ptrs);

  Row row;
  driver.run(6);
  driver.crash(*peers[1]);
  driver.crash(*peers[5]);
  driver.run_until_decoded(2000);
  row.decode_ticks = driver.now();
  driver.run(30);
  row.control = driver.network().control_messages();
  row.data = driver.network().data_messages();
  std::size_t live = 0, done = 0;
  for (auto& p : peers) {
    if (p->crashed()) continue;
    ++live;
    if (p->decoded()) ++done;
  }
  row.recovered = static_cast<double>(done) / static_cast<double>(live);
  return row;
}

}  // namespace

int main() {
  bench::MetricsSession session("trackerless");
  session.param("k", 12);
  session.param("d", 3);
  session.param("n", "20,40");
  session.param("seed", std::uint64_t{0xE200});

  bench::banner(
      "E20: centralized tracker vs trackerless gossip membership (Section 7)",
      "Identical content (2 generations of 8 x 8 B), d = 3, two peers crash\n"
      "at tick 6. 3 trials averaged. Control counts every non-data,\n"
      "non-keepalive message anywhere in the system.");

  Table table({"membership", "N", "ticks to all decoded", "control msgs",
               "data msgs", "post-crash decoded%"});
  for (const std::size_t n : {20u, 40u}) {
    RunningStats cd, cc, cdata, crec, gd, gc, gdata, grec;
    for (std::uint64_t trial = 0; trial < 3; ++trial) {
      const auto c = run_centralized(n, 0xE200 + trial);
      cd.add(static_cast<double>(c.decode_ticks));
      cc.add(static_cast<double>(c.control));
      cdata.add(static_cast<double>(c.data));
      crec.add(c.recovered);
      const auto g = run_gossip(n, 0xE200 + trial);
      gd.add(static_cast<double>(g.decode_ticks));
      gc.add(static_cast<double>(g.control));
      gdata.add(static_cast<double>(g.data));
      grec.add(g.recovered);
    }
    table.add_row({"central tracker", std::to_string(n), fmt(cd.mean(), 0),
                   fmt(cc.mean(), 0), fmt(cdata.mean(), 0),
                   fmt(crec.mean() * 100, 1)});
    table.add_row({"trackerless gossip", std::to_string(n), fmt(gd.mean(), 0),
                   fmt(gc.mean(), 0), fmt(gdata.mean(), 0),
                   fmt(grec.mean() * 100, 1)});
  }
  table.print();
  session.add_table("tracker_vs_gossip", table);

  std::printf(
      "\nReading: both regimes deliver the full content to every survivor.\n"
      "The tracker's control plane is minimal (O(d) per membership event)\n"
      "because it holds the global matrix; gossip spends more control\n"
      "messages (slot search, denials, view samples) and a little more time,\n"
      "but needs no global state anywhere and repairs purely locally —\n"
      "Section 7's elimination of the server, priced.\n");
  return 0;
}
