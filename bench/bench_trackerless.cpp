// E20 — centralized tracker vs fully decentralized membership, measured at
// message level on identical content and population. Section 7 claims the
// server's role "can be decreased still further or even eliminated"; this
// bench prices that elimination: what do joins, steady-state streaming, and
// crash repair cost under each regime?
//
// Both regimes run on the simulation kernel's event engine over a
// KernelTransport, so the comparison extends beyond the ideal fabric: a
// second sweep repeats it with 10% control loss and latency jitter — the
// regime where the tracker's retry logic and gossip's re-acquisition
// actually earn their keep.

#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_common.hpp"
#include "node/gossip_peer.hpp"
#include "node/protocol_scenario.hpp"
#include "sim/event_engine.hpp"
#include "util/stats.hpp"

using namespace ncast;
using namespace ncast::node;

namespace {

// The tracker regime runs on the sharded kernel by default (the production
// runner); pass --sequential for the single-queue run_scenario. The gossip
// regime drives its own EventEngine directly and is unaffected by the flag.
bool g_sequential = false;
constexpr std::uint32_t kShards = 4;
constexpr std::uint32_t kWorkers = 2;

std::vector<std::uint8_t> content(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bytes(8 * 8 * 2);  // 2 generations of 8 x 8
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  return bytes;
}

struct Row {
  double decode_time = 0;  // kernel time until every survivor decoded
  std::uint64_t control = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t data = 0;
  double recovered = 0;  // decoded fraction after mid-stream crashes
};

Row run_centralized(std::size_t n, std::uint64_t seed, const TransportSpec& link) {
  ProtocolScenarioSpec spec;
  spec.k = 12;
  spec.default_degree = 3;
  spec.repair_delay = 2.0;
  spec.generation_size = 8;
  spec.symbols = 8;
  spec.generations = 2;
  spec.silence_timeout = 6;
  spec.seed = seed;
  spec.transport = link;
  spec.initial_clients = static_cast<std::uint32_t>(n);
  // Two early joiners crash mid-stream (addresses 2 and 6, as in the old
  // lock-step version of this experiment).
  spec.faults.crash_at(6.0, 2);
  spec.faults.crash_at(6.0, 6);

  const auto report = g_sequential ? run_scenario(spec)
                                   : run_scenario_sharded(spec, kShards, kWorkers);

  Row row;
  for (const auto& o : report.outcomes) {
    if (o.crashed) continue;
    if (o.decode_time > row.decode_time) row.decode_time = o.decode_time;
  }
  row.control = report.control_messages;
  row.control_bytes = report.control_bytes;
  row.data = report.data_messages;
  row.recovered = report.decoded_fraction();
  return row;
}

Row run_gossip(std::size_t n, std::uint64_t seed, const TransportSpec& link) {
  GossipPeerConfig cfg;
  cfg.want_parents = 3;
  cfg.upload_slots = 3;
  cfg.silence_timeout = 6;
  cfg.seed = seed;
  GossipPeerConfig source_cfg = cfg;
  source_cfg.upload_slots = 6;

  sim::EventEngine engine;
  KernelTransport net(engine, link,
                      sim::RngStreams(seed).stream("bench.trackerless"));
  GossipPeer source(1, source_cfg, content(seed), 8, 8);
  source.start(engine, net);
  std::vector<std::unique_ptr<GossipPeer>> peers;
  for (std::size_t i = 0; i < n; ++i) {
    const Address addr = static_cast<Address>(i + 2);
    const Address introducer =
        i == 0 ? 1 : static_cast<Address>(2 + (seed + i * 7) % i);
    peers.push_back(std::make_unique<GossipPeer>(addr, cfg, introducer));
    peers.back()->start(engine, net);
  }
  engine.schedule_at(6.0, [&] {
    peers[1]->crash();
    net.crash(peers[1]->address());
    peers[5]->crash();
    net.crash(peers[5]->address());
  });

  // Run until every survivor decoded (checked in kernel-time slices so the
  // engine is not drained event by event), with the same 2000-unit cutoff
  // the lock-step version used.
  Row row;
  double t = 0.0;
  for (; t < 2000.0; t += 10.0) {
    engine.run_until(t + 10.0);
    bool all = true;
    for (const auto& p : peers) {
      if (!p->crashed() && !p->decoded()) all = false;
    }
    if (all) break;
  }
  row.decode_time = t + 10.0;
  engine.run_until(row.decode_time + 30.0);  // let re-acquisitions settle
  row.control = net.control_messages();
  row.control_bytes = net.control_bytes();
  row.data = net.data_messages();
  std::size_t live = 0, done = 0;
  for (const auto& p : peers) {
    if (p->crashed()) continue;
    ++live;
    if (p->decoded()) ++done;
  }
  row.recovered = static_cast<double>(done) / static_cast<double>(live);
  return row;
}

void sweep(Table& table, const char* fabric, const TransportSpec& link,
           bench::MetricsSession& session, const std::string& note_prefix) {
  for (const std::size_t n : {20u, 40u}) {
    RunningStats cd, cc, cb, cdata, crec, gd, gc, gb, gdata, grec;
    for (std::uint64_t trial = 0; trial < 3; ++trial) {
      const auto c = run_centralized(n, 0xE200 + trial, link);
      cd.add(c.decode_time);
      cc.add(static_cast<double>(c.control));
      cb.add(static_cast<double>(c.control_bytes));
      cdata.add(static_cast<double>(c.data));
      crec.add(c.recovered);
      const auto g = run_gossip(n, 0xE200 + trial, link);
      gd.add(g.decode_time);
      gc.add(static_cast<double>(g.control));
      gb.add(static_cast<double>(g.control_bytes));
      gdata.add(static_cast<double>(g.data));
      grec.add(g.recovered);
    }
    table.add_row({fabric, "central tracker", std::to_string(n),
                   fmt(cd.mean(), 0), fmt(cc.mean(), 0), fmt(cb.mean(), 0),
                   fmt(cdata.mean(), 0), fmt(crec.mean() * 100, 1)});
    table.add_row({fabric, "trackerless gossip", std::to_string(n),
                   fmt(gd.mean(), 0), fmt(gc.mean(), 0), fmt(gb.mean(), 0),
                   fmt(gdata.mean(), 0), fmt(grec.mean() * 100, 1)});
    if (n == 40) {
      session.note(note_prefix + "central_recovered_pct", crec.mean() * 100);
      session.note(note_prefix + "gossip_recovered_pct", grec.mean() * 100);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sequential") == 0) g_sequential = true;
  }
  bench::MetricsSession session("trackerless");
  session.param("k", 12);
  session.param("d", 3);
  session.param("n", "20,40");
  session.param("seed", std::uint64_t{0xE200});
  session.param("runner", g_sequential ? "sequential" : "sharded");

  bench::banner(
      "E20: centralized tracker vs trackerless gossip membership (Section 7)",
      "Identical content (2 generations of 8 x 8 B), d = 3, two peers crash\n"
      "at t = 6. Both regimes on the event kernel; 3 trials averaged.\n"
      "Control counts every non-data, non-keepalive message anywhere, and\n"
      "control bytes use the full wire accounting (peers, key bundles,\n"
      "stream plan). Ideal fabric first, then 10% control loss + jitter.");

  Table table({"fabric", "membership", "N", "time to all decoded",
               "control msgs", "control bytes", "data msgs",
               "post-crash decoded%"});

  TransportSpec ideal;  // fixed 1.0 latency, no loss: the old tick fabric
  sweep(table, "ideal", ideal, session, "ideal_");

  TransportSpec lossy;
  lossy.latency = sim::LatencySpec::uniform(0.5, 1.5);
  lossy.control_loss = sim::LossSpec::bernoulli(0.10);
  sweep(table, "lossy ctrl", lossy, session, "lossy_");

  table.print();
  session.add_table("tracker_vs_gossip", table);

  std::printf(
      "\nReading: both regimes deliver the full content to every survivor.\n"
      "The tracker's control plane is minimal (O(d) per membership event)\n"
      "because it holds the global matrix; gossip spends more control\n"
      "messages (slot search, denials, view samples) and a little more time,\n"
      "but needs no global state anywhere and repairs purely locally —\n"
      "Section 7's elimination of the server, priced. Under 10%% control\n"
      "loss both survive: the tracker by retransmitting hellos and\n"
      "complaints, gossip by re-issuing expired slot requests elsewhere.\n");
  return 0;
}
