// E22 — the unified kernel's reason to exist: one run with EVERYTHING on.
// Bursty Gilbert-Elliott loss, heterogeneous per-link latency, a bandwidth
// cap, scheduled churn (crashes with delayed repairs, graceful leaves), and
// entropy attackers — composed in a single ScenarioSpec and executed on the
// shared event engine. No pre-kernel simulator could run this experiment:
// each owned one adversity axis and its own event loop.
//
// The claim under test is the paper's headline robustness story: as long as
// a node keeps a positive min-cut of honest, live capacity, network coding
// delivers — adversity axes do not interact destructively, they just
// subtract capacity.

#include <cstdio>

#include "bench_common.hpp"
#include "overlay/flow_graph.hpp"
#include "util/stats.hpp"

using namespace ncast;

int main() {
  const bool smoke = bench::smoke();
  const std::uint32_t k = 8, d = 3;
  const std::size_t n = smoke ? 40 : 120;
  const std::size_t g = smoke ? 8 : 16;
  const double horizon = smoke ? 300.0 : 600.0;

  bench::MetricsSession session("scenario");
  session.param("k", k);
  session.param("d", d);
  session.param("n", n);
  session.param("seed", std::uint64_t{0xE220});

  bench::banner(
      "E22: composed adversity — loss x latency x churn x attacks (kernel)",
      "One packet-level run with Gilbert-Elliott loss (~10% mean, bursty),\n"
      "latency U[0.2, 1.2], bandwidth cap 4/period, scheduled crashes with\n"
      "repairs, graceful leaves, and entropy attackers. Decoded fraction vs\n"
      "the honest-capacity min-cut bound.");

  const auto m = bench::grow_overlay(k, d, n, 0xE220);
  const auto order = m.nodes_in_order();

  // Adversity cast: 5% entropy attackers from the start, 5% crash at t = 20
  // (half repaired at t = 80), 3% leave gracefully at t = 40.
  std::vector<sim::NodeBehavior> behavior(n, sim::NodeBehavior::kHonest);
  std::vector<overlay::NodeId> attackers, crashed, leavers;
  Rng cast_rng(0xE221);
  for (const auto node : order) {
    const double u = cast_rng.uniform();
    if (u < 0.05) {
      attackers.push_back(node);
      behavior[node] = sim::NodeBehavior::kEntropyAttack;
    } else if (u < 0.10) {
      crashed.push_back(node);
    } else if (u < 0.13) {
      leavers.push_back(node);
    }
  }

  bench::ScenarioBuilder scenario(0xE222);
  scenario.generation(g, 4)
      .uniform_latency(0.2, 1.2)
      .gilbert_elliott_loss(0.05, 0.45)  // stationary mean loss 10%, bursty
      .bandwidth_cap(4.0)
      .horizon(horizon);
  for (std::size_t i = 0; i < crashed.size(); ++i) {
    scenario.crash(20.0, crashed[i]);
    if (i % 2 == 0) scenario.repair(80.0, crashed[i]);
  }
  for (const auto node : leavers) scenario.leave(40.0, node);
  scenario.describe(session);
  session.param("attackers", attackers.size());
  session.param("crashes", crashed.size());
  session.param("leaves", leavers.size());

  const auto report = scenario.run(m, behavior);

  // The bound: min-cut in the capacity view where attackers and permanently
  // absent nodes contribute nothing. (Repaired crashers DO contribute — they
  // forward again from t = 80 on, and the horizon is generous.)
  auto honest_view = m;
  for (const auto node : attackers) honest_view.mark_failed(node);
  for (const auto node : leavers) honest_view.mark_failed(node);
  for (std::size_t i = 0; i < crashed.size(); ++i) {
    if (i % 2 != 0) honest_view.mark_failed(crashed[i]);
  }
  const auto honest_fg = overlay::build_flow_graph(honest_view);

  std::size_t guaranteed = 0, guaranteed_decoded = 0;
  RunningStats rate_vs_cut;
  for (const auto& o : report.outcomes) {
    if (honest_view.row(o.node).failed) continue;
    if (overlay::node_connectivity(honest_fg, o.node) <= 0) continue;
    ++guaranteed;
    if (o.decoded) ++guaranteed_decoded;
    if (o.decoded && o.max_flow > 0 && o.rate() > 0.0) {
      rate_vs_cut.add(std::min(1.0, o.rate() / static_cast<double>(o.max_flow)));
    }
  }

  Table table({"nodes", "guaranteed (honest cut > 0)", "of which decoded",
               "overall decoded%", "corrupted%", "mean rate/cut",
               "packets sent", "lost"});
  table.add_row({std::to_string(report.outcomes.size()),
                 std::to_string(guaranteed), std::to_string(guaranteed_decoded),
                 fmt(100.0 * report.decoded_fraction(), 1),
                 fmt(100.0 * report.corrupted_fraction(), 1),
                 fmt(rate_vs_cut.mean(), 3), std::to_string(report.packets_sent),
                 std::to_string(report.packets_lost)});
  table.print();
  session.add_table("composed", table);
  session.note("decoded_fraction", report.decoded_fraction());
  session.note("guaranteed", static_cast<std::uint64_t>(guaranteed));
  session.note("guaranteed_decoded", static_cast<std::uint64_t>(guaranteed_decoded));
  session.note("events_executed", report.events_executed);

  std::printf(
      "\nReading: every node with a positive honest min-cut decodes despite\n"
      "four adversity axes running at once (guaranteed == decoded), and no\n"
      "decode is corrupted. Bursty loss, latency spread, churn, and entropy\n"
      "attacks compose by subtracting capacity, never by breaking coding.\n");

  return guaranteed_decoded == guaranteed ? 0 : 1;
}
