// E5 — Locality of failures (Section 1 + Theorem 4 discussion):
// "If a node fails then only its immediate children suffer ... The
// probability that a working node loses connectivity from the server does
// not increase as the size of the network grows."
//
// We grow explicit overlays of increasing N, tag iid failures, and measure
// the probability that a sampled working node has connectivity < d — overall
// and bucketed by depth. Both must stay flat near pd.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "overlay/flow_graph.hpp"
#include "util/stats.hpp"

using namespace ncast;

int main() {
  bench::MetricsSession session("locality");
  bench::banner(
      "E5: failure locality (loss probability ~pd, independent of N and depth)",
      "k = 32, d = 3, p = 0.02 (pd = 0.06). 600 sampled working nodes per N.");

  const std::uint32_t k = 32, d = 3;
  const double p = 0.02;
  session.param("k", k);
  session.param("d", d);
  session.param("p", p);
  session.param("n", "1000..16000");
  session.param("seed", std::uint64_t{0xE50});

  Table table({"N", "P(conn < d)", "mean loss", "pd", "max depth"});
  for (const std::size_t n : {1000u, 2000u, 4000u, 8000u, 16000u}) {
    auto m = bench::grow_overlay(k, d, n, 0xE50 + n);
    Rng rng(0xE51 + n);
    bench::tag_iid_failures(m, p, rng);
    const auto fg = build_flow_graph(m);
    const auto depths = node_depths(fg);

    // Sample working nodes uniformly.
    std::vector<overlay::NodeId> working;
    for (auto node : m.nodes_in_order()) {
      if (!m.row(node).failed) working.push_back(node);
    }
    rng.shuffle(working);
    const std::size_t samples = std::min<std::size_t>(600, working.size());

    std::size_t degraded = 0;
    RunningStats loss;
    std::int64_t max_depth = 0;
    for (std::size_t i = 0; i < samples; ++i) {
      const auto conn = node_connectivity(fg, working[i]);
      if (conn < d) ++degraded;
      loss.add(static_cast<double>(d) - static_cast<double>(conn));
      max_depth = std::max(max_depth, depths[fg.vertex_of(working[i])]);
    }
    table.add_row({std::to_string(n),
                   fmt(static_cast<double>(degraded) / samples, 4),
                   fmt(loss.mean(), 4), fmt(p * d, 4),
                   std::to_string(max_depth)});
  }
  table.print();

  // Depth buckets at the largest N: locality means deep nodes are no worse.
  std::printf("\nBy depth at N = 16000 (flat rows = failures stay local):\n");
  {
    auto m = bench::grow_overlay(k, d, 16000, 0xE52);
    Rng rng(0xE53);
    bench::tag_iid_failures(m, p, rng);
    const auto fg = build_flow_graph(m);
    const auto depths = node_depths(fg);

    std::vector<overlay::NodeId> working;
    for (auto node : m.nodes_in_order()) {
      if (!m.row(node).failed) working.push_back(node);
    }
    // Bucket by depth quartile.
    std::int64_t max_depth = 1;
    for (auto node : working) {
      max_depth = std::max(max_depth, depths[fg.vertex_of(node)]);
    }
    Table buckets({"depth range", "nodes sampled", "P(conn < d)", "mean loss"});
    const std::int64_t step = std::max<std::int64_t>(1, max_depth / 4);
    for (std::int64_t lo = 0; lo < max_depth; lo += step) {
      const std::int64_t hi = lo + step;
      std::size_t count = 0, degraded = 0;
      RunningStats loss;
      for (auto node : working) {
        const auto dep = depths[fg.vertex_of(node)];
        if (dep < lo || dep >= hi) continue;
        if (count >= 250) break;  // cap max-flow work per bucket
        ++count;
        const auto conn = node_connectivity(fg, node);
        if (conn < d) ++degraded;
        loss.add(static_cast<double>(d) - static_cast<double>(conn));
      }
      if (count == 0) continue;
      buckets.add_row({"[" + std::to_string(lo) + "," + std::to_string(hi) + ")",
                       std::to_string(count),
                       fmt(static_cast<double>(degraded) / count, 4),
                       fmt(loss.mean(), 4)});
    }
    buckets.print();
    session.add_table("by_depth", buckets);
  }
  session.add_table("by_n", table);
  return 0;
}
