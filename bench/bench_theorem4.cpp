// E1/E2 — Theorem 4 and Lemmas 2–3.
//
// Paper claim: before collapse, E[B^t]/A <= (1+eps) p d — the expected defect
// of a random d-tuple of hanging threads stays pinned near pd no matter how
// many nodes have joined; equivalently (Lemma 3) the expected connectivity
// loss of an arriving node is ~pd, i.e. a node only ever feels its parents'
// failures. We run the exact polymatroid defect process and report the
// time-averaged E[B^t]/A, the arrival-measured loss, and the defective-tuple
// probability, against the pd yardstick.

#include <cstdio>

#include "bench_common.hpp"
#include "overlay/polymatroid.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

struct Config {
  std::uint32_t k;
  std::uint32_t d;
  double p;
};

void run(const Config& c, Table& table) {
  const std::size_t steps = c.k >= 20 ? 1500 : 3000;
  const std::size_t warmup = steps / 10;
  overlay::PolymatroidCurtain pc(c.k);
  Rng rng(0xE1000 + c.k * 100 + c.d * 10 + static_cast<std::uint64_t>(c.p * 1000));

  RunningStats tuple_defect;     // E[B^t]/A sampled over time
  RunningStats arrival_loss;     // d - connectivity of each arrival
  RunningStats defective_frac;   // (B_1+..+B_d)/A
  const double a = static_cast<double>(
      overlay::PolymatroidCurtain::tuple_count(c.k, c.d));

  for (std::size_t t = 0; t < steps; ++t) {
    const auto conn = pc.join_random(c.d, c.p, rng);
    if (t < warmup) continue;
    arrival_loss.add(static_cast<double>(c.d - conn));
    if (t % 10 == 0) {
      tuple_defect.add(pc.mean_defect(c.d));
      defective_frac.add(static_cast<double>(pc.defective_tuples(c.d)) / a);
    }
  }

  const double pd = c.p * c.d;
  table.add_row({std::to_string(c.k), std::to_string(c.d), fmt(c.p, 3),
                 fmt(pd, 4), fmt(tuple_defect.mean(), 4),
                 fmt(arrival_loss.mean(), 4), fmt(defective_frac.mean(), 4),
                 fmt(tuple_defect.mean() / pd, 2)});
}

}  // namespace

int main() {
  bench::MetricsSession session("theorem4");
  session.param("k", "12..20");
  session.param("d", "2..4");
  session.param("p", "0.005..0.02");
  session.param("n", 3000);  // arrivals per config
  session.param("seed", std::uint64_t{0xE1000});

  bench::banner(
      "E1/E2: Theorem 4 + Lemmas 2-3 (defect stays ~pd, independent of N)",
      "Exact polymatroid process, 3000 arrivals per config (10% warmup).\n"
      "Claim: E[B]/A <= (1+eps) pd with small eps when k >> d^2; the\n"
      "arrival-measured loss (Lemma 3) equals E[B]/A; the defective-tuple\n"
      "probability (Lemma 2) is at most E[B]/A.");

  Table table({"k", "d", "p", "pd", "E[B]/A", "arrival loss", "P(defective)",
               "ratio/(pd)"});
  for (const auto& c : std::vector<Config>{
           {16, 2, 0.005}, {16, 2, 0.01}, {16, 2, 0.02},
           {16, 3, 0.005}, {16, 3, 0.01}, {16, 3, 0.02},
           {16, 4, 0.005}, {16, 4, 0.01}, {16, 4, 0.02},
           {12, 2, 0.01},  {20, 2, 0.01},  // k sweep at fixed d,p
       }) {
    run(c, table);
  }
  table.print();

  std::printf(
      "\nReading: 'E[B]/A' and 'arrival loss' should track the pd column\n"
      "(ratio close to 1, growing mildly as d^2/k grows); P(defective) <=\n"
      "E[B]/A. Stationarity across thousands of arrivals is itself the headline:\n"
      "defect does NOT accumulate with network size.\n");

  // Second table: N-independence. Fix (k,d,p), report the defect measured in
  // disjoint windows as the network grows 10x.
  Table growth({"window (arrivals)", "E[B]/A", "arrival loss"});
  {
    const std::uint32_t k = 16, d = 3;
    const double p = 0.01;
    overlay::PolymatroidCurtain pc(k);
    Rng rng(0xE2);
    std::size_t window_id = 0;
    for (std::size_t window : {250u, 250u, 500u, 1000u, 2000u, 4000u}) {
      RunningStats defect, loss;
      for (std::size_t t = 0; t < window; ++t) {
        const auto conn = pc.join_random(d, p, rng);
        loss.add(static_cast<double>(d - conn));
        if (t % 10 == 0) defect.add(pc.mean_defect(d));
      }
      if (window_id++ == 0) continue;  // first window is warmup
      growth.add_row({std::to_string(window), fmt(defect.mean(), 4),
                      fmt(loss.mean(), 4)});
    }
  }
  std::printf("\nN-independence at k=16, d=3, p=0.01 (pd = 0.03):\n");
  growth.print();
  session.add_table("defect_vs_pd", table);
  session.add_table("n_independence", growth);
  return 0;
}
