#pragma once
// Shared helpers for the experiment harness binaries. Every experiment prints
// a header naming the paper claim it reproduces, then a table of measured
// rows, so that bench_output.txt reads as a self-contained lab notebook.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "metrics_session.hpp"
#include "overlay/curtain_server.hpp"
#include "overlay/thread_matrix.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace ncast::bench {

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

/// Grows a failure-free overlay of n nodes via the join protocol.
inline overlay::ThreadMatrix grow_overlay(std::uint32_t k, std::uint32_t d,
                                          std::size_t n, std::uint64_t seed,
                                          overlay::InsertPolicy policy =
                                              overlay::InsertPolicy::kAppend) {
  overlay::CurtainServer server(k, d, Rng(seed), policy);
  for (std::size_t i = 0; i < n; ++i) server.join();
  return server.matrix();
}

/// Tags each node failed independently with probability p.
inline void tag_iid_failures(overlay::ThreadMatrix& m, double p, Rng& rng) {
  for (overlay::NodeId n : m.order()) {
    if (rng.chance(p)) m.mark_failed(n);
  }
}

/// Fluent builder for composed scenario specs (layer 4 of the simulation
/// kernel). Every packet-level experiment goes through this, so a driver is
/// just: build the overlay, describe the adversity, run, read the report —
/// and the scenario parameters land in the telemetry dump uniformly via
/// describe().
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(std::uint64_t seed) { spec_.seed = seed; }

  ScenarioBuilder& generation(std::size_t g, std::size_t symbols) {
    spec_.generation_size = g;
    spec_.symbols = symbols;
    return *this;
  }
  /// Round-synchronous mode (the paper's lockstep rounds): latency is pinned
  /// to half a period so every round's packets land before the next round.
  ScenarioBuilder& rounds(std::size_t r) {
    spec_.round_sync = true;
    spec_.rounds = r;
    spec_.link.latency = sim::LatencySpec::fixed_delay(spec_.send_period / 2.0);
    return *this;
  }
  ScenarioBuilder& horizon(double h) {
    spec_.horizon = h;
    return *this;
  }
  ScenarioBuilder& send_period(double p) {
    spec_.send_period = p;
    if (spec_.round_sync) {
      spec_.link.latency = sim::LatencySpec::fixed_delay(p / 2.0);
    }
    return *this;
  }
  ScenarioBuilder& fixed_latency(double t) {
    spec_.link.latency = sim::LatencySpec::fixed_delay(t);
    return *this;
  }
  ScenarioBuilder& uniform_latency(double lo, double hi) {
    spec_.link.latency = sim::LatencySpec::uniform(lo, hi);
    return *this;
  }
  ScenarioBuilder& bernoulli_loss(double p) {
    spec_.link.loss = sim::LossSpec::bernoulli(p);
    return *this;
  }
  ScenarioBuilder& gilbert_elliott_loss(double enter_bad, double exit_bad) {
    spec_.link.loss = sim::LossSpec::gilbert_elliott(enter_bad, exit_bad);
    return *this;
  }
  ScenarioBuilder& bandwidth_cap(double per_period) {
    spec_.link.bandwidth_cap = per_period;
    return *this;
  }
  ScenarioBuilder& partition(double from, double until, double b_fraction) {
    spec_.link.partition = sim::PartitionSpec::window(from, until, b_fraction);
    return *this;
  }
  ScenarioBuilder& null_keys(std::size_t count) {
    spec_.null_keys = count;
    return *this;
  }
  ScenarioBuilder& crash(double t, overlay::NodeId node) {
    spec_.faults.crash_at(t, node);
    return *this;
  }
  ScenarioBuilder& repair(double t, overlay::NodeId node) {
    spec_.faults.repair_at(t, node);
    return *this;
  }
  ScenarioBuilder& leave(double t, overlay::NodeId node) {
    spec_.faults.leave_at(t, node);
    return *this;
  }
  ScenarioBuilder& behavior(double t, overlay::NodeId node,
                            sim::NodeBehavior b) {
    spec_.faults.behavior_at(t, node, b);
    return *this;
  }
  ScenarioBuilder& faults(const sim::FaultPlan& plan) {
    spec_.faults.merge(plan);
    return *this;
  }

  const sim::ScenarioSpec& spec() const { return spec_; }

  sim::ScenarioReport run(const overlay::ThreadMatrix& m,
                          const std::vector<sim::NodeBehavior>& b = {}) const {
    return sim::run_scenario(m, spec_, b);
  }
  sim::ScenarioReport run(const graph::Digraph& g, graph::Vertex source,
                          const std::vector<sim::NodeBehavior>& b = {}) const {
    return sim::run_scenario(g, source, spec_, b);
  }

  /// Records the scenario's knobs as session parameters (prefixed, so a
  /// driver can describe several scenarios in one telemetry dump).
  void describe(MetricsSession& session, const std::string& prefix = "") const {
    const auto key = [&prefix](const char* name) { return prefix + name; };
    session.param(key("generation_size"), spec_.generation_size);
    session.param(key("symbols"), spec_.symbols);
    session.param(key("mode"), spec_.round_sync ? "rounds" : "async");
    session.param(key("mean_loss"), spec_.link.loss.mean_loss());
    session.param(key("latency_bound"), spec_.link.latency.upper_bound());
    if (spec_.link.bandwidth_cap > 0.0) {
      session.param(key("bandwidth_cap"), spec_.link.bandwidth_cap);
    }
    if (!spec_.faults.empty()) {
      session.param(key("fault_events"), spec_.faults.size());
    }
  }

 private:
  sim::ScenarioSpec spec_;
};

}  // namespace ncast::bench
