#pragma once
// Shared helpers for the experiment harness binaries. Every experiment prints
// a header naming the paper claim it reproduces, then a table of measured
// rows, so that bench_output.txt reads as a self-contained lab notebook.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "metrics_session.hpp"
#include "overlay/curtain_server.hpp"
#include "overlay/thread_matrix.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace ncast::bench {

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

/// Grows a failure-free overlay of n nodes via the join protocol.
inline overlay::ThreadMatrix grow_overlay(std::uint32_t k, std::uint32_t d,
                                          std::size_t n, std::uint64_t seed,
                                          overlay::InsertPolicy policy =
                                              overlay::InsertPolicy::kAppend) {
  overlay::CurtainServer server(k, d, Rng(seed), policy);
  for (std::size_t i = 0; i < n; ++i) server.join();
  return server.matrix();
}

/// Tags each node failed independently with probability p.
inline void tag_iid_failures(overlay::ThreadMatrix& m, double p, Rng& rng) {
  for (overlay::NodeId n : m.nodes_in_order()) {
    if (rng.chance(p)) m.mark_failed(n);
  }
}

}  // namespace ncast::bench
