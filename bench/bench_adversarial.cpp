// E6 — Section 5: adversarial failures vs random failures.
//
// Threat model: a p-fraction of users are adversaries who join normally and
// then all fail at once. If rows are appended in arrival order, a burst of
// adversaries that joined back-to-back occupies a contiguous band of the
// curtain and can sever every thread at that height, cutting off everyone
// below. The paper's defense: insert each new row at a *random* position in
// M — then a coordinated burst is statistically identical to iid failures.
//
// Scenarios:
//   A. iid random failures, append policy            (the analyzed baseline)
//   B. coordinated burst, append policy              (the attack)
//   C. coordinated burst, random-position insertion  (the defense)

#include <cstdio>

#include "bench_common.hpp"
#include "overlay/curtain_server.hpp"
#include "overlay/flow_graph.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

struct Result {
  double p_loss = 0;      // P(working node lost connectivity)
  double mean_loss = 0;   // mean (d - conn)
  double p_cutoff = 0;    // P(conn == 0): completely severed
};

Result evaluate(const overlay::ThreadMatrix& m, std::uint32_t d,
                std::size_t samples, Rng& rng) {
  const auto fg = build_flow_graph(m);
  std::vector<overlay::NodeId> working;
  for (auto n : m.nodes_in_order()) {
    if (!m.row(n).failed) working.push_back(n);
  }
  rng.shuffle(working);
  samples = std::min(samples, working.size());
  Result r;
  RunningStats loss;
  std::size_t lost = 0, cutoff = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto conn = node_connectivity(fg, working[i]);
    if (conn < d) ++lost;
    if (conn == 0) ++cutoff;
    loss.add(static_cast<double>(d) - static_cast<double>(conn));
  }
  r.p_loss = static_cast<double>(lost) / static_cast<double>(samples);
  r.p_cutoff = static_cast<double>(cutoff) / static_cast<double>(samples);
  r.mean_loss = loss.mean();
  return r;
}

}  // namespace

int main() {
  bench::MetricsSession session("adversarial");
  session.param("k", 16);
  session.param("d", 2);
  session.param("n", 2000);
  session.param("seed", std::uint64_t{0xE60});
  session.param("adversary_fraction", 0.02);

  bench::banner(
      "E6: adversarial vs random failures (Section 5)",
      "k = 16, d = 2, N = 2000, adversary fraction 2% (40 nodes failing\n"
      "simultaneously). 400 sampled working nodes, 3 trials averaged.");

  const std::uint32_t k = 16, d = 2;
  const std::size_t n = 2000;
  const double frac = 0.02;
  const auto burst = static_cast<std::size_t>(frac * n);

  Table table({"scenario", "policy", "P(loss)", "mean loss", "P(cut off)"});
  RunningStats a_loss, a_mean, a_cut, b_loss, b_mean, b_cut, c_loss, c_mean,
      c_cut;

  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    // A: iid random failures, append.
    {
      auto m = bench::grow_overlay(k, d, n, 0xE60 + trial);
      Rng rng(0xE61 + trial);
      bench::tag_iid_failures(m, frac, rng);
      const auto r = evaluate(m, d, 400, rng);
      a_loss.add(r.p_loss);
      a_mean.add(r.mean_loss);
      a_cut.add(r.p_cutoff);
    }
    // B: coordinated burst in the middle of the arrival order, append.
    {
      auto m = bench::grow_overlay(k, d, n, 0xE62 + trial);
      const auto order = m.nodes_in_order();
      for (std::size_t i = n / 2; i < n / 2 + burst; ++i) {
        m.mark_failed(order[i]);
      }
      Rng rng(0xE63 + trial);
      const auto r = evaluate(m, d, 400, rng);
      b_loss.add(r.p_loss);
      b_mean.add(r.mean_loss);
      b_cut.add(r.p_cutoff);
    }
    // C: same burst of arrivals, but rows were inserted at random positions.
    {
      auto m = bench::grow_overlay(k, d, n, 0xE64 + trial,
                                   overlay::InsertPolicy::kRandomPosition);
      // The adversaries are the same arrival cohort (node ids n/2 ..
      // n/2+burst), but random insertion scattered them over the matrix.
      for (std::size_t i = n / 2; i < n / 2 + burst; ++i) {
        m.mark_failed(static_cast<overlay::NodeId>(i));
      }
      Rng rng(0xE65 + trial);
      const auto r = evaluate(m, d, 400, rng);
      c_loss.add(r.p_loss);
      c_mean.add(r.mean_loss);
      c_cut.add(r.p_cutoff);
    }
  }

  table.add_row({"A: iid failures", "append", fmt(a_loss.mean(), 4),
                 fmt(a_mean.mean(), 4), fmt(a_cut.mean(), 4)});
  table.add_row({"B: coordinated burst", "append", fmt(b_loss.mean(), 4),
                 fmt(b_mean.mean(), 4), fmt(b_cut.mean(), 4)});
  table.add_row({"C: coordinated burst", "random insert", fmt(c_loss.mean(), 4),
                 fmt(c_mean.mean(), 4), fmt(c_cut.mean(), 4)});
  table.print();
  session.add_table("scenarios", table);

  std::printf(
      "\nReading: B should be catastrophic (a contiguous failed band severs\n"
      "threads wholesale; nodes below are cut off). C should match A —\n"
      "random insertion makes a coordinated burst no more harmful than iid\n"
      "failures, which is exactly the Section 5 claim.\n");

  // E6b — the attack, replayed with real packets: the same adversary cohort
  // crashes mid-broadcast (a scheduled FaultPlan burst), under append vs
  // random-position insertion. Decoded fraction tells the same story as the
  // min-cut analysis above, at packet level.
  bench::banner(
      "E6b: mid-broadcast coordinated crash (scenario kernel)",
      "k = 16, d = 2, N = 400, 5% adversary burst crashing at t = 6,\n"
      "g = 8, async latency U[0.2, 1.2]. Decoded fraction of survivors.");
  {
    const std::size_t pn = 400;
    const auto pburst = static_cast<std::size_t>(0.05 * pn);
    Table pkt({"policy", "decoded%", "mean rate/cut", "packets lost"});
    for (const bool random_insert : {false, true}) {
      auto m = bench::grow_overlay(k, d, pn, 0xE66,
                                   random_insert
                                       ? overlay::InsertPolicy::kRandomPosition
                                       : overlay::InsertPolicy::kAppend);
      bench::ScenarioBuilder scenario(0xE67);
      scenario.generation(8, 4).uniform_latency(0.2, 1.2).horizon(250.0);
      // The cohort is consecutive arrivals (ids n/2 ..); append keeps them
      // contiguous in the matrix, random insertion scatters them.
      for (std::size_t i = pn / 2; i < pn / 2 + pburst; ++i) {
        scenario.crash(6.0, static_cast<overlay::NodeId>(i));
      }
      if (!random_insert) scenario.describe(session, "packet_level_");
      const auto report = scenario.run(m);
      RunningStats vs_cut;
      for (const auto& o : report.outcomes) {
        if (o.decoded && o.max_flow > 0) {
          vs_cut.add(std::min(1.0, o.rate() / static_cast<double>(o.max_flow)));
        }
      }
      pkt.add_row({random_insert ? "random insert" : "append",
                   fmt(100.0 * report.decoded_fraction(), 1),
                   fmt(vs_cut.mean(), 3), std::to_string(report.packets_lost)});
    }
    pkt.print();
    session.add_table("packet_burst", pkt);
    std::printf(
        "\nReading: under append the burst band starves the nodes below it\n"
        "(decoded%% drops); random insertion keeps the decoded fraction near\n"
        "the iid-failure level — the defense holds under real packet flow.\n");
  }
  return 0;
}
