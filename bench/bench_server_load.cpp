// E12 — the scalability claim of Sections 1/3/7: the server's data-plane
// bandwidth is k units no matter how many users join (it serves only its
// direct children), and its control plane costs O(d) messages per membership
// event — so the population the system supports grows exponentially in the
// server bandwidth (Theorem 5) while the server's own load stays flat.

#include <cstdio>

#include "bench_common.hpp"
#include "overlay/flow_graph.hpp"
#include "sim/churn.hpp"
#include "util/stats.hpp"

using namespace ncast;

int main() {
  bench::MetricsSession session("server_load");
  session.param("k", 32);
  session.param("d", 3);
  session.param("n", "250..4000");  // target populations
  session.param("seed", std::uint64_t{0xEC0});
  session.param("failure_fraction", 0.1);

  bench::banner(
      "E12: server load vs population (control O(d)/event; data plane = k)",
      "Churn at increasing target populations, k = 32, d = 3, 10% crashes,\n"
      "repair interval 1.0, horizon 150.");

  Table table({"target N", "peak N", "events", "ctrl msgs/event",
               "server data streams", "direct children"});

  for (const std::uint64_t target : {250u, 500u, 1000u, 2000u, 4000u}) {
    sim::ChurnConfig cfg;
    cfg.arrival_rate = static_cast<double>(target) / 10.0;
    cfg.mean_lifetime = 60.0;
    cfg.failure_fraction = 0.1;
    cfg.horizon = 150.0;
    cfg.max_population = target;

    overlay::CurtainServer server(32, 3, Rng(0));
    const auto report = sim::run_churn(32, 3, overlay::InsertPolicy::kAppend,
                                       cfg, 0xEC0 + target, &server);

    const std::uint64_t events =
        report.joins + report.graceful_leaves + report.failures + report.repairs;
    const double per_event =
        events ? static_cast<double>(report.server_stats.control_messages) /
                     static_cast<double>(events)
               : 0.0;

    // Data plane: the server sends on exactly the threads whose first
    // clipper exists — at most k streams, always.
    const auto fg = build_flow_graph(server.matrix());
    const auto server_streams =
        fg.graph.out_degree(overlay::FlowGraph::kServerVertex);

    // Direct children: distinct nodes fed by the server.
    std::vector<bool> seen(fg.graph.vertex_count(), false);
    std::size_t children = 0;
    for (auto e : fg.graph.out_edges(overlay::FlowGraph::kServerVertex)) {
      const auto to = fg.graph.edge(e).to;
      if (!seen[to]) {
        seen[to] = true;
        ++children;
      }
    }

    table.add_row({std::to_string(target), fmt(report.peak_population, 0),
                   std::to_string(events), fmt(per_event, 2),
                   std::to_string(server_streams), std::to_string(children)});
  }
  table.print();
  session.add_table("load_vs_population", table);

  std::printf(
      "\nReading: ctrl msgs/event stays constant (~2 + O(d)) and the server's\n"
      "data streams never exceed k = 32, at any population — the server cost\n"
      "of adding the 4000th user equals that of adding the 250th.\n");
  return 0;
}
