// E21 — ergodic failures (Section 2) and the Avalanche rationale [13]:
// under packet loss, coded transfer needs ~g/(1-q) receptions (every
// surviving packet is useful), while uncoded chunking pays the coupon
// collector tax (~g ln g even with NO loss) because only the *right* chunk
// helps. This is the per-link mechanism behind the paper's "such bandwidth
// reductions can be treated as temporary failures".

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "gf/gf256.hpp"
#include "sim/broadcast.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

/// Rounds for a single receiver to collect a generation over one lossy link.
std::size_t coded_rounds(std::size_t g, double q, Rng& rng) {
  std::vector<std::vector<std::uint8_t>> source(g, std::vector<std::uint8_t>(4));
  for (auto& row : source) {
    for (auto& b : row) b = static_cast<std::uint8_t>(rng.below(256));
  }
  coding::SourceEncoder<gf::Gf256> enc(0, source);
  coding::Decoder<gf::Gf256> dec(0, g, 4);
  std::size_t rounds = 0;
  while (!dec.complete()) {
    ++rounds;
    if (rng.chance(q)) continue;  // lost
    dec.absorb(enc.emit(rng));
  }
  return rounds;
}

/// Same link, but the sender pushes uniformly random *uncoded* chunks (the
/// sender does not know which the receiver has — the stateless BitTorrent-
/// without-maps strawman the Avalanche paper argues against).
std::size_t uncoded_rounds(std::size_t g, double q, Rng& rng) {
  std::vector<bool> have(g, false);
  std::size_t remaining = g, rounds = 0;
  while (remaining > 0) {
    ++rounds;
    if (rng.chance(q)) continue;
    const auto c = rng.below(g);
    if (!have[c]) {
      have[c] = true;
      --remaining;
    }
  }
  return rounds;
}

}  // namespace

int main() {
  bench::MetricsSession session("loss");
  session.param("k", "n/a (single link)");
  session.param("d", "n/a");
  session.param("n", 200);  // trials per cell
  session.param("seed", std::uint64_t{0xE210});
  session.param("generation_size", 32);

  bench::banner(
      "E21: packet loss — coding vs coupon collecting (Sections 1/2, [13])",
      "One lossy link, generation of g = 32 chunks, 200 trials per cell.\n"
      "Coded: any surviving packet is innovative. Uncoded: a random chunk\n"
      "helps only if it is new.");

  const std::size_t g = 32;
  Table table({"loss q", "coded rounds", "ideal g/(1-q)", "uncoded rounds",
               "uncoded/coded", "coupon bound g*H(g)/(1-q)"});
  const double harmonic = [] {
    double h = 0;
    for (std::size_t i = 1; i <= 32; ++i) h += 1.0 / static_cast<double>(i);
    return h;
  }();

  for (const double q : {0.0, 0.1, 0.3, 0.5}) {
    RunningStats coded, uncoded;
    Rng rng(0xE210 + static_cast<std::uint64_t>(q * 100));
    for (int trial = 0; trial < 200; ++trial) {
      coded.add(static_cast<double>(coded_rounds(g, q, rng)));
      uncoded.add(static_cast<double>(uncoded_rounds(g, q, rng)));
    }
    table.add_row({fmt(q, 1), fmt(coded.mean(), 1),
                   fmt(static_cast<double>(g) / (1.0 - q), 1),
                   fmt(uncoded.mean(), 1), fmt(uncoded.mean() / coded.mean(), 2),
                   fmt(static_cast<double>(g) * harmonic / (1.0 - q), 1)});
  }
  table.print();
  session.add_table("coded_vs_uncoded", table);

  std::printf(
      "\nReading: coded transfer sits on the information-theoretic line\n"
      "g/(1-q); uncoded random chunking pays ~H(g) = %.2fx more at every\n"
      "loss rate (the coupon-collector tax), which compounds across overlay\n"
      "hops. This is why the curtain carries coded packets and why ergodic\n"
      "failures in Section 2 are a rate headache, not a correctness one —\n"
      "see also Broadcast.ErgodicPacketLossOnlySlowsThingsDown in the tests.\n",
      harmonic);

  // E21b — burstiness is free (for coding): at the same mean loss rate, a
  // bursty Gilbert-Elliott channel and an iid Bernoulli channel decode in
  // (nearly) the same time, because any surviving coded packet is useful —
  // it does not matter *which* ones the burst ate. Run through the unified
  // scenario kernel over a full curtain overlay.
  bench::banner(
      "E21b: iid vs bursty loss at equal mean rate (scenario kernel)",
      "k = 8, d = 3, N = 60, g = 32. Bernoulli(q) vs Gilbert-Elliott with\n"
      "stationary loss q (mean burst ~2.2 packets). Mean decode time over\n"
      "nodes, packet-level simulation.");
  {
    const auto m = bench::grow_overlay(8, 3, 60, 0xE215);
    Table burst({"mean loss q", "bernoulli decode time", "GE decode time",
                 "bernoulli lost", "GE lost", "decoded% (both)"});
    for (const double q : {0.1, 0.3}) {
      // Matched stationary rate: pi_bad = enter/(enter+exit) = q with
      // loss_bad = 1; exit 0.45 gives mean bad-run length ~2.2.
      const double exit_bad = 0.45;
      const double enter_bad = q * exit_bad / (1.0 - q);

      bench::ScenarioBuilder iid(0xE216);
      iid.generation(32, 4).fixed_latency(0.25).horizon(400.0).bernoulli_loss(q);
      bench::ScenarioBuilder bursty(0xE216);
      bursty.generation(32, 4).fixed_latency(0.25).horizon(400.0)
          .gilbert_elliott_loss(enter_bad, exit_bad);

      const auto a = iid.run(m);
      const auto b = bursty.run(m);
      RunningStats ta, tb;
      std::size_t both = 0;
      for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        if (a.outcomes[i].decoded) ta.add(a.outcomes[i].decode_time);
        if (b.outcomes[i].decoded) tb.add(b.outcomes[i].decode_time);
        if (a.outcomes[i].decoded && b.outcomes[i].decoded) ++both;
      }
      burst.add_row({fmt(q, 1), fmt(ta.mean(), 1), fmt(tb.mean(), 1),
                     std::to_string(a.packets_lost), std::to_string(b.packets_lost),
                     fmt(100.0 * static_cast<double>(both) /
                             static_cast<double>(a.outcomes.size()), 1)});
    }
    burst.print();
    session.add_table("iid_vs_bursty", burst);
    std::printf(
        "\nReading: the two decode-time columns track each other — loss\n"
        "correlation changes *when* packets die, not how many rank units\n"
        "survive, and coding only counts survivors.\n");
  }
  return 0;
}
