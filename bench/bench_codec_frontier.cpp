// Codec frontier — throughput vs complexity across generation structures.
//
// Sweeps generation size x band width x overlap over the structured codec
// (coding/structure.hpp + structured_decoder.hpp) and measures, per
// configuration: overhead (redundant-packet fraction until complete), mean
// per-packet absorb cost, full-decode latency, and the coefficient bytes a
// packet carries on the wire. This is the trade the sparse-coding papers
// promise ("Effects of the Generation Size and Overlap on Throughput and
// Complexity in Randomized Linear Network Coding"; "Sparse Network Coding
// with Overlapping Classes"): banded and overlapped structures give up a
// little overhead to make decoding much cheaper, which is what lets
// generation sizes grow past the dense O(g^2) wall.
//
// Correctness gates in the exit code:
//   - every configuration must complete and decode bit-exactly;
//   - in smoke mode with observability compiled in, the best banded
//     configuration at g = 256 whose overhead is within +0.05 of dense must
//     absorb at least 3x faster than dense (the ROADMAP item-1 claim). The
//     committed baseline pins this via the perf gate too
//     (notes:band_speedup_g256).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "coding/encoder.hpp"
#include "coding/structure.hpp"
#include "coding/structured_decoder.hpp"
#include "coding/wire.hpp"
#include "gf/dispatch.hpp"
#include "gf/gf256.hpp"
#include "metrics_session.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ncast;
using Gf = gf::Gf256;

namespace {

struct Config {
  std::string label;
  coding::GenerationStructure structure;
};

struct RunResult {
  std::size_t sent = 0;
  std::size_t coeff_entries = 0;  // summed strip lengths of sent packets
  double absorb_ns = 0.0;         // summed per-absorb wall time
  double finalize_ns = 0.0;       // back-substitution + payload read-off
  bool complete = false;
  bool verified = false;
};

std::vector<Config> make_configs(std::size_t g, bool smoke) {
  using coding::GenerationStructure;
  std::vector<Config> out;
  out.push_back({"dense", GenerationStructure::dense(g)});
  out.push_back({"banded w=g/8", GenerationStructure::banded(g, g / 8)});
  out.push_back({"banded w=g/4", GenerationStructure::banded(g, g / 4)});
  out.push_back(
      {"overlapped c=g/4 v=c/8", GenerationStructure::overlapping(
                                     g, g / 4, g / 32 ? g / 32 : 1)});
  if (!smoke) {
    out.push_back(
        {"banded w=g/4 wrap", GenerationStructure::banded(g, g / 4, true)});
    out.push_back(
        {"overlapped c=g/4 v=c/4", GenerationStructure::overlapping(
                                       g, g / 4, g / 16 ? g / 16 : 1)});
  }
  return out;
}

/// One encode-until-decoded run. The encoder emits structure-conformant
/// packets; the decoder runs the auto-selected policy for the structure.
RunResult run_one(const coding::GenerationStructure& s, std::size_t symbols,
                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> flat(s.g * symbols);
  for (auto& b : flat) b = static_cast<std::uint8_t>(rng.below(256));

  const coding::SourceEncoder<Gf> enc(0, s, flat, symbols);
  coding::StructuredDecoder<Gf> dec(0, s, symbols);
  coding::CodedPacket<Gf> p;

  RunResult r;
  const std::size_t cap = 50 * s.g;  // far beyond any sane overhead
  while (!dec.complete() && r.sent < cap) {
    enc.emit_into(p, rng);
    ++r.sent;
    r.coeff_entries += p.coeffs.size();
    obs::Stopwatch sw;
    dec.absorb(p);
    r.absorb_ns += sw.elapsed_ns();
  }
  r.complete = dec.complete();
  if (!r.complete) return r;

  obs::Stopwatch fin;
  const auto decoded = dec.source_packets();
  r.finalize_ns = fin.elapsed_ns();

  r.verified = true;
  for (std::size_t i = 0; i < s.g && r.verified; ++i) {
    for (std::size_t j = 0; j < symbols; ++j) {
      if (decoded[i][j] != flat[i * symbols + j]) {
        r.verified = false;
        break;
      }
    }
  }
  return r;
}

std::string note_key(const std::string& prefix, std::size_t g,
                     const std::string& label) {
  std::string key = prefix + "_g" + std::to_string(g) + "_" + label;
  for (auto& c : key) {
    if (c == ' ' || c == '=' || c == '/') c = '_';
  }
  return key;
}

}  // namespace

int main() {
  const bool smoke = bench::smoke();
  const std::vector<std::size_t> g_list =
      smoke ? std::vector<std::size_t>{64, 256}
            : std::vector<std::size_t>{64, 256, 512};
  const std::size_t symbols = smoke ? 256 : 1024;
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{0xF401, 0xF402}
            : std::vector<std::uint64_t>{0xF401, 0xF402, 0xF403};

  bench::MetricsSession session("codec_frontier");
  session.param("symbols", symbols);
  session.param("trials", seeds.size());
  session.param("seed", seeds.front());
  session.param("g_max", g_list.back());
  session.param("gf_tier", gf::tier_name(gf::active_tier()));

  std::printf(
      "\n=== codec frontier: structure x decoder policy ===\n"
      "Overhead vs per-packet absorb cost vs full-decode latency, for dense,\n"
      "banded, and overlapping-class generation structures (GF(2^8),\n"
      "%zu-byte payloads, %zu trials per point).\n\n",
      symbols, seeds.size());

  Table table({"g", "structure", "policy", "packets", "overhead",
               "absorb_ns", "decode_us", "coeffs/pkt", "wire_bytes"});

  bool all_ok = true;
  double dense_absorb_g256 = 0.0, dense_overhead_g256 = 0.0;
  double best_band_absorb_g256 = 0.0;
  std::string best_band_label;

  for (const std::size_t g : g_list) {
    for (const auto& cfg : make_configs(g, smoke)) {
      const coding::StructuredDecoder<Gf> probe(0, cfg.structure, symbols);
      double sent = 0, coeffs = 0, absorb_ns = 0, decode_ns = 0;
      bool ok = true;
      for (const std::uint64_t seed : seeds) {
        const RunResult r = run_one(cfg.structure, symbols, seed * 2 + g);
        ok = ok && r.complete && r.verified;
        sent += static_cast<double>(r.sent);
        coeffs += static_cast<double>(r.coeff_entries);
        absorb_ns += r.absorb_ns;
        decode_ns += r.absorb_ns + r.finalize_ns;
      }
      all_ok = all_ok && ok;
      const double trials = static_cast<double>(seeds.size());
      const double mean_sent = sent / trials;
      const double overhead = mean_sent / static_cast<double>(g) - 1.0;
      const double mean_absorb = sent > 0 ? absorb_ns / sent : 0.0;
      const double mean_decode_us = decode_ns / trials / 1000.0;
      const double mean_coeffs = sent > 0 ? coeffs / sent : 0.0;
      const double wire_bytes = static_cast<double>(
          coding::wire_size_structured<Gf>(
              static_cast<std::size_t>(mean_coeffs + 0.5), symbols));

      table.add_row({std::to_string(g), cfg.label,
                     coding::to_string(probe.policy()),
                     fmt(mean_sent, 1), fmt(overhead, 3), fmt(mean_absorb, 0),
                     fmt(mean_decode_us, 1), fmt(mean_coeffs, 1),
                     fmt(wire_bytes, 0)});
      session.note(note_key("overhead", g, cfg.label), overhead);
      session.note(note_key("absorb_ns", g, cfg.label), mean_absorb);

      if (g == 256) {
        if (cfg.label == "dense") {
          dense_absorb_g256 = mean_absorb;
          dense_overhead_g256 = overhead;
        } else if (cfg.label.rfind("banded", 0) == 0 &&
                   !cfg.structure.wrap &&
                   overhead <= dense_overhead_g256 + 0.05) {
          if (best_band_absorb_g256 == 0.0 ||
              mean_absorb < best_band_absorb_g256) {
            best_band_absorb_g256 = mean_absorb;
            best_band_label = cfg.label;
          }
        }
      }
    }
  }

  table.print();
  session.add_table("frontier", table);

  // The ROADMAP item-1 headline: banded absorb at g = 256, at overhead
  // comparable to dense (within +0.05), must be >= 3x cheaper than dense.
  const double speedup = best_band_absorb_g256 > 0.0
                             ? dense_absorb_g256 / best_band_absorb_g256
                             : 0.0;
  session.note("band_speedup_g256", speedup);
  session.note("all_configs_decoded", all_ok);

  const bool obs_on = NCAST_OBS_ENABLED != 0;
  std::printf(
      "\nReading: at g = 256, the cheapest comparable-overhead banded config\n"
      "(%s) absorbs %.1fx faster than dense. Overlapped classes trade more\n"
      "overhead for cheap per-class decoding; wrap-around bands fix the edge\n"
      "overhead of plain bands but must decode dense.\n",
      best_band_label.empty() ? "none" : best_band_label.c_str(), speedup);

  if (!all_ok) return 1;
  if (smoke && obs_on && speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: banded speedup %.2fx < 3x at g=256 (dense %.0f ns vs "
                 "banded %.0f ns)\n",
                 speedup, dense_absorb_g256, best_band_absorb_g256);
    return 1;
  }
  return 0;
}
