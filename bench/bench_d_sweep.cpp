// E9 — Section 7's d-discussion: with the user's fixed bandwidth split into
// d unit threads (and fixed server bandwidth, so k grows with d), the
// expected *fraction* of bandwidth lost is ~p regardless of d, while the
// paper conjectures the variance of the loss fraction shrinks like 1/d —
// larger d buys smoother rates (Internet radio), d=2 suffices for long
// downloads.

#include <cstdio>

#include "bench_common.hpp"
#include "overlay/polymatroid.hpp"
#include "util/stats.hpp"

using namespace ncast;

int main() {
  bench::MetricsSession session("d_sweep");
  session.param("k", "4d (8..20)");
  session.param("d", "2..5");
  session.param("p", 0.02);
  session.param("n", "2200..6500");  // arrivals per config
  session.param("seed", std::uint64_t{0xE90});

  bench::banner(
      "E9: choice of d (loss fraction ~p for all d; variance drops with d)",
      "Server bandwidth fixed at 4 user-bandwidths => k = 4d. p = 0.02.\n"
      "Loss fraction of an arrival = (d - connectivity)/d; several thousand\n"
      "arrivals per config after warmup.");

  const double p = 0.02;
  Table table({"d", "k", "mean loss fraction", "p", "variance", "var * d"});

  for (const std::uint32_t d : {2u, 3u, 4u, 5u}) {
    const std::uint32_t k = 4 * d;
    overlay::PolymatroidCurtain pc(k);
    Rng rng(0xE90 + d);
    RunningStats loss;
    // Scale the step budget down as the 2^k table grows.
    const int steps = k <= 12 ? 6500 : (k <= 16 ? 4000 : 2200);
    const int warmup = steps / 13;
    for (int t = 0; t < steps; ++t) {
      const auto conn = pc.join_random(d, p, rng);
      if (t < warmup) continue;
      loss.add(static_cast<double>(d - conn) / static_cast<double>(d));
    }
    table.add_row({std::to_string(d), std::to_string(k), fmt(loss.mean(), 4),
                   fmt(p, 4), fmt(loss.variance(), 5),
                   fmt(loss.variance() * d, 4)});
  }
  table.print();
  session.add_table("loss_vs_d", table);
  std::printf(
      "\nReading: 'mean loss fraction' hugs p for every d (all d equivalent\n"
      "in expectation); 'variance' decreases as d grows — 'var * d' staying\n"
      "roughly constant supports the paper's 1/d-variance conjecture.\n");
  return 0;
}
