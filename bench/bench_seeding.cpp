// E17 — the Section 7 open issue: "the system may be self-sustaining
// (without requiring bandwidth connectivity all the way from the source) if
// the scenario is a download scenario" — and Section 6's remark that in the
// random-graph model "it may be possible eventually for the server to
// disconnect itself completely from the network after the content has been
// delivered to a small fraction of the population".
//
// We seed a random-graph swarm for a limited number of rounds, disconnect
// the server, let the swarm keep recoding among itself, and measure who
// completes. The interesting quantity is the threshold: how much aggregate
// seeding (in multiples of the generation size g) must the server inject
// before the swarm can finish the job alone?

#include <cstdio>

#include "bench_common.hpp"
#include "coding/encoder.hpp"
#include "coding/recoder.hpp"
#include "gf/gf256.hpp"
#include "overlay/random_graph.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

struct Outcome {
  double completed = 0;     ///< fraction of peers at full rank at the end
  double mean_rank = 0;     ///< mean rank/g at the end
  std::size_t seeded = 0;   ///< packets the server injected in total
};

Outcome run(std::size_t n_peers, std::size_t seed_rounds, std::size_t g,
            std::uint64_t seed) {
  using Gf = gf::Gf256;
  const std::size_t symbols = 8;
  Rng rng(seed);

  // Random-graph overlay (Section 6 variant): d = 3, 4 seed children.
  overlay::RandomGraphOverlay o(3, 4, Rng(seed ^ 0xABC));
  for (std::size_t i = 0; i < n_peers; ++i) o.join();

  std::vector<std::vector<std::uint8_t>> source(g, std::vector<std::uint8_t>(symbols));
  for (auto& row : source) {
    for (auto& b : row) b = static_cast<std::uint8_t>(rng.below(256));
  }
  coding::SourceEncoder<Gf> encoder(0, source);

  std::vector<coding::Recoder<Gf>> state;
  for (graph::Vertex v = 0; v < o.graph().vertex_count(); ++v) {
    state.emplace_back(0, g, symbols);
  }

  Outcome out;
  // The swarm gets the same post-seed budget in every configuration; a
  // "never leaves" server is modeled by a seed window covering the run.
  const std::size_t total_rounds = std::min<std::size_t>(seed_rounds, 64) + 40 + 6 * g;
  for (std::size_t round = 1; round <= total_rounds; ++round) {
    std::vector<std::pair<graph::Vertex, coding::CodedPacket<Gf>>> mail;
    for (graph::EdgeId id = 0; id < o.graph().edge_count(); ++id) {
      const auto& e = o.graph().edge(id);
      if (!e.alive) continue;
      if (e.from == overlay::RandomGraphOverlay::kServer) {
        if (round > seed_rounds) continue;  // the server has left
        mail.emplace_back(e.to, encoder.emit(rng));
        ++out.seeded;
      } else if (state[e.from].rank() > 0) {
        if (auto p = state[e.from].emit(rng)) mail.emplace_back(e.to, std::move(*p));
      }
    }
    for (auto& [to, p] : mail) state[to].absorb(p);
  }

  std::size_t complete = 0;
  double rank_sum = 0;
  for (graph::Vertex v = 1; v < o.graph().vertex_count(); ++v) {
    if (state[v].complete()) ++complete;
    rank_sum += static_cast<double>(state[v].rank()) / static_cast<double>(g);
  }
  const auto peers = o.graph().vertex_count() - 1;
  out.completed = static_cast<double>(complete) / static_cast<double>(peers);
  out.mean_rank = rank_sum / static_cast<double>(peers);
  return out;
}

}  // namespace

int main() {
  bench::MetricsSession session("seeding");
  session.param("k", "n/a (random graph)");
  session.param("d", 3);
  session.param("n", 120);  // peers
  session.param("seed", std::uint64_t{0xE170});
  session.param("generation_size", 24);

  bench::banner(
      "E17: self-sustaining download (Section 6/7 open issue)",
      "Random-graph overlay (d = 3, 4 direct children), one generation of\n"
      "g = 24 packets, 120 peers. The server seeds for a limited number of\n"
      "rounds, then disconnects; the swarm keeps recoding among itself for\n"
      "40 + 6g more rounds. 3 trials averaged per row.");

  const std::size_t g = 24;
  Table table({"seed rounds", "seeded packets", "seeded/g (aggregate)",
               "completed%", "mean rank/g"});
  for (const std::size_t seed_rounds :
       {2u, 4u, 6u, 8u, 12u, 20u, 40u, 1000000u}) {
    RunningStats completed, rank;
    std::size_t seeded = 0;
    for (std::uint64_t trial = 0; trial < 3; ++trial) {
      const auto out = run(120, seed_rounds, g, 0xE170 + trial * 31 + seed_rounds);
      completed.add(out.completed);
      rank.add(out.mean_rank);
      seeded = out.seeded;
    }
    table.add_row({seed_rounds >= 1000000u ? "never leaves"
                                           : std::to_string(seed_rounds),
                   std::to_string(seeded),
                   fmt(static_cast<double>(seeded) / g, 1),
                   fmt(completed.mean() * 100, 1), fmt(rank.mean(), 3)});
  }
  table.print();
  session.add_table("seed_threshold", table);

  std::printf(
      "\nReading: completion flips from partial to total as soon as the\n"
      "server has injected a small multiple of g packets in aggregate —\n"
      "once the union of swarm buffers holds full rank (plus a margin for\n"
      "coupon-collector overlap among the seed children), recoding alone\n"
      "finishes the distribution for all 120 peers. The server serves ~2g\n"
      "packets ever, a vanishing fraction of the ~N*g the swarm exchanges:\n"
      "the open issue resolves affirmatively in the random-graph model.\n"
      "(The acyclic curtain cannot self-sustain: the server's direct\n"
      "children have no other feeds, so whatever they miss is lost.)\n");
  return 0;
}
