// E11 — Section 7's attack taxonomy, measured with real packets:
//   - failure attacks: attackers go silent (the system is robust; ~Section 5)
//   - entropy-destruction attacks: attackers forward trivial combinations
//     (worse than failures in the long run, and harder to detect)
//   - jamming attacks: attackers inject well-formed garbage; after mixing it
//     contaminates almost every packet of almost every user.

#include <cstdio>

#include <cmath>

#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

struct Outcome {
  double decoded = 0;
  double corrupted = 0;
  double mean_rank_frac = 0;
  double mean_mincut_frac = 0;
  double mean_decode_slack = 0;  // decode_round - depth, decoded nodes only
};

Outcome run(const overlay::ThreadMatrix& m, sim::NodeBehavior attack,
            double fraction, std::uint64_t seed, std::size_t g,
            std::size_t null_keys = 0) {
  std::vector<sim::NodeBehavior> behavior(m.row_count(), sim::NodeBehavior::kHonest);
  Rng rng(seed);
  std::vector<bool> is_attacker(m.row_count(), false);
  for (std::size_t i = 0; i < behavior.size(); ++i) {
    if (rng.chance(fraction)) {
      behavior[i] = attack;
      is_attacker[i] = true;
    }
  }
  const auto report = bench::ScenarioBuilder(seed ^ 0x5555)
                          .generation(g, 8)
                          .rounds(0)  // round-synchronous, auto budget
                          .null_keys(null_keys)
                          .run(m, behavior);

  Outcome out;
  std::size_t honest = 0, decoded = 0, corrupted = 0;
  double rank_sum = 0, cut_sum = 0, slack_sum = 0;
  for (const auto& o : report.outcomes) {
    if (o.node < is_attacker.size() && is_attacker[o.node]) continue;
    ++honest;
    rank_sum += static_cast<double>(o.rank_achieved) / static_cast<double>(g);
    cut_sum += static_cast<double>(o.max_flow) / 3.0;
    if (o.decoded) {
      ++decoded;
      if (o.corrupted) ++corrupted;
      // In round mode deliveries land at round boundaries, so the decode
      // round is the floor of the decode time.
      slack_sum += std::floor(o.decode_time) - static_cast<double>(o.depth);
    }
  }
  if (honest == 0) return out;
  if (decoded > 0) out.mean_decode_slack = slack_sum / static_cast<double>(decoded);
  out.decoded = static_cast<double>(decoded) / static_cast<double>(honest);
  out.corrupted = static_cast<double>(corrupted) / static_cast<double>(honest);
  out.mean_rank_frac = rank_sum / static_cast<double>(honest);
  out.mean_mincut_frac = cut_sum / static_cast<double>(honest);
  return out;
}

}  // namespace

int main() {
  bench::MetricsSession session("attacks");
  session.param("k", 12);
  session.param("d", 3);
  session.param("n", 300);
  session.param("seed", std::uint64_t{0xEB0});
  session.param("generation_size", 8);

  bench::banner(
      "E11: failure vs entropy-destruction vs jamming attacks (Section 7)",
      "k = 12, d = 3, N = 300, generation size 8. Honest-node outcomes only.\n"
      "decoded: reached full rank; corrupted: decoded to garbage.");

  const auto m = bench::grow_overlay(12, 3, 300, 0xEB0);

  Table table({"attack", "attacker frac", "decoded%", "corrupted%",
               "mean rank/g", "mean min-cut/d", "decode slack (rounds)"});
  const std::vector<std::pair<const char*, sim::NodeBehavior>> attacks{
      {"failure (offline)", sim::NodeBehavior::kOffline},
      {"entropy-destruction", sim::NodeBehavior::kEntropyAttack},
      {"jamming", sim::NodeBehavior::kJammer}};

  for (const auto& [name, behavior] : attacks) {
    for (const double frac : {0.05, 0.10, 0.25, 0.40}) {
      const auto out = run(m, behavior, frac, 0xEB1 + static_cast<std::uint64_t>(frac * 1e4), 8);
      table.add_row({name, fmt(frac, 2), fmt(out.decoded * 100, 1),
                     fmt(out.corrupted * 100, 1), fmt(out.mean_rank_frac, 3),
                     fmt(out.mean_mincut_frac, 3),
                     fmt(out.mean_decode_slack, 1)});
    }
  }
  table.print();
  session.add_table("attack_taxonomy", table);

  std::printf(
      "\nReading: failure and entropy attacks are tolerated at small\n"
      "fractions ('fairly robust, at least in the short term'); at larger\n"
      "fractions entropy attacks starve rank/decoding harder than failures\n"
      "at the same fraction (and are undetectable in-band: min-cut still\n"
      "looks healthy). Jamming keeps rank high while corrupting nearly all\n"
      "decoded nodes — the paper's argument for homomorphic signatures.\n");

  // The open problem, closed: null-key verification (packets checked against
  // random vectors orthogonal to the valid packet space, distributed over
  // the control channel) lets honest nodes drop jam packets despite mixing.
  Table defended({"jamming + defense", "attacker frac", "decoded%",
                  "corrupted%", "mean rank/g"});
  for (const double frac : {0.05, 0.10, 0.25}) {
    const auto off = run(m, sim::NodeBehavior::kJammer, frac,
                         0xEB2 + static_cast<std::uint64_t>(frac * 1e4), 8, 0);
    const auto on = run(m, sim::NodeBehavior::kJammer, frac,
                        0xEB2 + static_cast<std::uint64_t>(frac * 1e4), 8, 4);
    defended.add_row({"verification off", fmt(frac, 2),
                      fmt(off.decoded * 100, 1), fmt(off.corrupted * 100, 1),
                      fmt(off.mean_rank_frac, 3)});
    defended.add_row({"null keys (4)", fmt(frac, 2), fmt(on.decoded * 100, 1),
                      fmt(on.corrupted * 100, 1), fmt(on.mean_rank_frac, 3)});
  }
  std::printf(
      "\nJamming with the null-key defense (Section 7's open problem, solved\n"
      "with keys from the valid packet space's orthogonal complement):\n");
  defended.print();
  session.add_table("null_key_defense", defended);
  std::printf(
      "\nReading: with verification on, corruption drops to zero and jammers\n"
      "degrade into mere capacity holes — the attack is demoted to a failure\n"
      "attack, which Section 5 already tolerates.\n");
  return 0;
}
