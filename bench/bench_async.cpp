// E15 — Section 6, measured with asynchronous packets: the acyclic curtain
// suffers no throughput loss from delay spread but pays linear delay; the
// cyclic random-graph overlay delivers logarithmic delay for a small
// throughput haircut (wasted circulating transmissions).

#include <cstdio>

#include "bench_common.hpp"
#include "overlay/flow_graph.hpp"
#include "overlay/random_graph.hpp"
#include "sim/async_broadcast.hpp"
#include "util/stats.hpp"

using namespace ncast;

int main() {
  bench::MetricsSession session("async");
  session.param("k", 24);
  session.param("d", 3);
  session.param("n", "200..800");
  session.param("seed", std::uint64_t{0xEF0});
  session.param("generation_size", 36);

  bench::banner(
      "E15: asynchronous packets — delay spread vs cycles (Section 6)",
      "Link latencies uniform in [0.2, 1.8] periods, desynchronized clocks.\n"
      "k = 24, d = 3, generation size 36. 'rate/min-cut' ~ 1 means no\n"
      "throughput loss; 'first arrival' is the delivery delay.");

  Table table({"overlay", "N", "decoded%", "rate/min-cut", "mean first arrival",
               "innovative/sent"});

  for (const std::size_t n : {200u, 400u, 800u}) {
    // Acyclic curtain.
    {
      const auto m = bench::grow_overlay(24, 3, n, 0xEF0 + n);
      const auto fg = build_flow_graph(m);
      sim::AsyncConfig cfg;
      cfg.generation_size = 36;
      cfg.symbols = 8;
      cfg.seed = 0xEF1 + n;
      const auto report = sim::simulate_async_broadcast(
          fg.graph, overlay::FlowGraph::kServerVertex, cfg);
      RunningStats arrival;
      for (const auto& o : report.outcomes) {
        if (o.first_arrival >= 0) arrival.add(o.first_arrival);
      }
      table.add_row({"curtain (acyclic)", std::to_string(n),
                     fmt(report.decoded_fraction() * 100, 1),
                     fmt(report.mean_rate_vs_cut(), 3), fmt(arrival.mean(), 1),
                     fmt(static_cast<double>(report.packets_innovative) /
                             static_cast<double>(report.packets_sent), 3)});
    }
    // Cyclic random graph.
    {
      overlay::RandomGraphOverlay o(3, 8, Rng(0xEF2 + n));
      for (std::size_t i = 0; i < n; ++i) o.join();
      sim::AsyncConfig cfg;
      cfg.generation_size = 36;
      cfg.symbols = 8;
      cfg.seed = 0xEF3 + n;
      const auto report = sim::simulate_async_broadcast(
          o.graph(), overlay::RandomGraphOverlay::kServer, cfg);
      RunningStats arrival;
      for (const auto& out : report.outcomes) {
        if (out.first_arrival >= 0) arrival.add(out.first_arrival);
      }
      table.add_row({"random graph (cyclic)", std::to_string(n),
                     fmt(report.decoded_fraction() * 100, 1),
                     fmt(report.mean_rate_vs_cut(), 3), fmt(arrival.mean(), 1),
                     fmt(static_cast<double>(report.packets_innovative) /
                             static_cast<double>(report.packets_sent), 3)});
    }
  }
  table.print();
  session.add_table("delay_vs_topology", table);

  std::printf(
      "\nReading: the curtain's first-arrival delay grows linearly with N\n"
      "while the random graph's barely moves (log N) — the Section 6\n"
      "trade-off. rate/min-cut stays pinned near 1 for the acyclic curtain\n"
      "under heavy jitter (no loss from delay spread); with per-generation\n"
      "buffering the cyclic overlay also reaches min-cut here, so at this\n"
      "scale the cost of cycles shows up only as redundant circulating\n"
      "transmissions (innovative/sent), not as lost rate — consistent with\n"
      "the paper calling the loss 'small'.\n");
  return 0;
}
