// E22 — control-plane adversity: the protocol's robustness story priced at
// message level. The paper assumes the control links (hello, complaint,
// redirect) are reliable; this experiment drops them with increasing
// probability and measures what the retry machinery buys: join latency (the
// hello/accept exchange with doubling-backoff retransmission), repair
// convergence (complaints retransmit until the splice happens), and the
// decoded fraction of the survivors. The claim under test: the protocol
// degrades gracefully — joins and repairs get slower, but never hang —
// up to at least 10% control loss.
//
// Runs on the sharded kernel by default (run_scenario_sharded, 4 shards x 2
// workers — the production runner); pass --sequential for the single-queue
// run_scenario. The two runners consume different RNG streams by design, so
// their absolute numbers differ; each is deterministic in itself.
//
// A second axis sweeps the generation structure (dense, banded w = g/8,
// overlapped classes) at 10% control loss: same protocol, different data
// plane, with the v2 compact framing's bytes-per-packet measured from the
// real serialized sizes (net.data_bytes).

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "coding/structure.hpp"
#include "node/protocol_scenario.hpp"
#include "obs/trace.hpp"
#include "obs/trace_event.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

// Sharded-by-default runner switch (--sequential restores run_scenario).
bool g_sequential = false;
constexpr std::uint32_t kShards = 4;
constexpr std::uint32_t kWorkers = 2;

node::ProtocolScenarioReport run(const node::ProtocolScenarioSpec& spec) {
  return g_sequential ? node::run_scenario(spec)
                      : node::run_scenario_sharded(spec, kShards, kWorkers);
}

struct SweepPoint {
  double loss = 0.0;
  RunningStats joined_pct, join_latency, join_retries;
  RunningStats repairs, repair_time, decoded_pct, control_dropped;
  bool converged = true;  // every trial joined everyone and repaired the crash
};

// What one join's span must contain for the causal trace to be usable as a
// post-mortem: the hello retransmission(s), the accept delivery, and the
// node's first rank advance, all carrying the same span id.
struct JoinChain {
  bool retried = false;
  bool accepted = false;
  bool advanced = false;
  bool complete() const { return retried && accepted && advanced; }
};

// Runs one deliberately lossy scenario against a cleared trace ring and
// checks that at least one join episode's full retry chain reconstructs by
// span id alone. Exports the buffer in both formats (JSONL for grep/diff,
// Chrome trace_event for Perfetto) as a side effect.
bool capture_trace(std::uint32_t n) {
  ncast::obs::trace().clear();

  node::ProtocolScenarioSpec spec;
  spec.k = 12;
  spec.default_degree = 3;
  spec.generations = 1;
  spec.generation_size = 8;
  spec.symbols = 8;
  spec.silence_timeout = 8;
  spec.repair_delay = 2.0;
  spec.join_retry = 4.0;
  spec.seed = 0xE221;
  spec.horizon = 80.0;  // joins + first rank advances; full decode not needed
  spec.transport.latency = sim::LatencySpec::uniform(0.5, 1.5);
  // 20% control loss: with n joins, some hello or accept is essentially
  // guaranteed to be lost, which is exactly the chain we want on record.
  spec.transport.control_loss = sim::LossSpec::bernoulli(0.20);
  spec.faults.join_burst(1.0, n, 1.0);
  // Deliberately the sequential runner: the span-chain reconstruction wants
  // one globally ordered trace, not per-lane interleavings.
  node::run_scenario(spec);

  std::map<ncast::obs::SpanId, JoinChain> chains;
  for (const auto& e : ncast::obs::trace().events_in_order()) {
    if (e.span == ncast::obs::kNoSpan) continue;
    switch (e.kind) {
      case ncast::obs::TraceKind::kMsgRetry:
        if (e.b == static_cast<std::uint64_t>(node::MessageType::kJoinRequest)) {
          chains[e.span].retried = true;
        }
        break;
      case ncast::obs::TraceKind::kMsgDeliver:
        if (e.b == static_cast<std::uint64_t>(node::MessageType::kJoinAccept)) {
          chains[e.span].accepted = true;
        }
        break;
      case ncast::obs::TraceKind::kRankAdvance:
        chains[e.span].advanced = true;
        break;
      default:
        break;
    }
  }
  std::size_t complete = 0;
  for (const auto& [span, chain] : chains) {
    if (chain.complete()) ++complete;
  }

  ncast::obs::trace().write_jsonl("TRACE_control_loss.jsonl");
  ncast::obs::write_trace_event(ncast::obs::trace(),
                                "TRACE_control_loss.trace.json");
  std::printf(
      "\nCausal trace: %zu retained events, %zu join spans with a complete\n"
      "retry chain (hello retransmission -> accept -> first rank advance);\n"
      "exported TRACE_control_loss.jsonl and TRACE_control_loss.trace.json\n"
      "(load the latter in Perfetto / chrome://tracing).\n",
      ncast::obs::trace().size(), complete);
  return complete > 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sequential") == 0) g_sequential = true;
  }
  const bool smoke = bench::smoke();
  const std::uint32_t n = smoke ? 12 : 24;
  const std::uint64_t trials = smoke ? 1 : 3;
  const double crash_time = 50.0;

  bench::MetricsSession session("control_loss");
  session.param("k", 12);
  session.param("d", 3);
  session.param("n", n);
  session.param("seed", std::uint64_t{0xE220});
  session.param("trials", trials);
  session.param("crash_time", crash_time);
  session.param("runner", g_sequential ? "sequential" : "sharded");

  bench::banner(
      "E22: join latency and repair convergence vs control-link loss",
      "Message plane on the event kernel (sharded runner by default;\n"
      "--sequential for the single-queue one): N clients join through lossy\n"
      "control links (latency U[0.5, 1.5]), two early joiners crash, their\n"
      "children's complaints drive the repair. Data links stay clean, so\n"
      "every slowdown below is purely the control plane.");

  std::vector<double> rates = {0.0, 0.05, 0.10, 0.15, 0.20};
  if (smoke) rates = {0.0, 0.10};

  std::vector<SweepPoint> points;
  for (const double loss : rates) {
    SweepPoint pt;
    pt.loss = loss;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      node::ProtocolScenarioSpec spec;
      spec.k = 12;
      spec.default_degree = 3;
      spec.generations = 2;
      spec.generation_size = 8;
      spec.symbols = 8;
      spec.silence_timeout = 8;
      spec.repair_delay = 2.0;
      spec.join_retry = 4.0;
      spec.seed = 0xE220 + trial;
      spec.transport.latency = sim::LatencySpec::uniform(0.5, 1.5);
      if (loss > 0.0) {
        spec.transport.control_loss = sim::LossSpec::bernoulli(loss);
      }
      spec.faults.join_burst(1.0, n, 1.0);
      spec.faults.crash_join_at(crash_time, 0);
      spec.faults.crash_join_at(crash_time + 5.0, 1);

      const auto report = run(spec);

      std::size_t joined = 0;
      for (const auto& o : report.outcomes) {
        if (o.joined) ++joined;
      }
      pt.joined_pct.add(100.0 * static_cast<double>(joined) /
                        static_cast<double>(n));
      if (report.mean_join_latency() >= 0.0) {
        pt.join_latency.add(report.mean_join_latency());
      }
      pt.join_retries.add(static_cast<double>(report.total_join_retries()));
      pt.repairs.add(static_cast<double>(report.repairs_done));
      if (report.repairs_done > 0) {
        pt.repair_time.add(report.last_repair_time - crash_time);
      }
      pt.decoded_pct.add(100.0 * report.decoded_fraction());
      pt.control_dropped.add(static_cast<double>(report.control_dropped));
      if (joined != n || report.repairs_done < 2) pt.converged = false;
    }
    points.push_back(pt);
  }

  Table table({"control loss%", "joined%", "mean join latency", "join retries",
               "repairs done", "repair conv time", "decoded%",
               "ctrl msgs dropped"});
  for (const auto& pt : points) {
    table.add_row({fmt(pt.loss * 100, 0), fmt(pt.joined_pct.mean(), 1),
                   fmt(pt.join_latency.mean(), 2), fmt(pt.join_retries.mean(), 1),
                   fmt(pt.repairs.mean(), 1), fmt(pt.repair_time.mean(), 1),
                   fmt(pt.decoded_pct.mean(), 1),
                   fmt(pt.control_dropped.mean(), 0)});
  }
  table.print();
  session.add_table("loss_sweep", table);
  session.note("max_loss_pct", rates.back() * 100);

  // The acceptance gate: at <= 10% control loss, every trial must have
  // joined every client and completed both repairs before the horizon.
  // Hanging (a lost complaint or hello never retried) is the failure mode
  // the retry logic exists to kill; a slow join is fine, a stuck one is not.
  bool gate_ok = true;
  for (const auto& pt : points) {
    if (pt.loss <= 0.10 && !pt.converged) gate_ok = false;
  }
  session.note("converged_at_10pct", gate_ok);

  // --- structure sweep ----------------------------------------------------
  // Same protocol under 10% control loss, three data planes: dense RLNC,
  // banded strips of width g/8 (wrapping) mixed with densified relay rows,
  // and overlapped classes kept compact on every hop. The wire cost column
  // is real serialized bytes per data packet (v1 vs v2 framing included).
  struct StructureLane {
    const char* name;
    coding::StructureSpec structure;
  };
  const StructureLane lanes[] = {
      {"dense", coding::StructureSpec::dense()},
      {"banded", coding::StructureSpec::banded(2, true)},  // w = g/8
      {"overlapped", coding::StructureSpec::overlapping(6, 2)},
  };
  const std::size_t sweep_gen_size = 16;

  Table structure_table({"structure", "joined%", "decoded%", "repairs done",
                         "data msgs", "data bytes", "bytes/packet"});
  bool structure_gate = true;
  std::map<std::string, double> structure_decoded;
  for (const auto& lane : lanes) {
    RunningStats joined_pct, decoded_pct, repairs, data_msgs, data_bytes;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      node::ProtocolScenarioSpec spec;
      spec.k = 12;
      spec.default_degree = 3;
      spec.generations = 2;
      spec.generation_size = sweep_gen_size;
      spec.symbols = 8;
      spec.silence_timeout = 8;
      spec.repair_delay = 2.0;
      spec.join_retry = 4.0;
      spec.seed = 0xE230 + trial;
      spec.structure = lane.structure;
      // One common horizon, sized for the costliest lane: overlapped codes
      // pay a redundancy overhead (class packets that repeat boundary
      // coverage), so full rank lands later than the dense auto-horizon.
      spec.horizon = 400.0;
      spec.transport.latency = sim::LatencySpec::uniform(0.5, 1.5);
      spec.transport.control_loss = sim::LossSpec::bernoulli(0.10);
      spec.faults.join_burst(1.0, n, 1.0);
      spec.faults.crash_join_at(crash_time, 0);
      spec.faults.crash_join_at(crash_time + 5.0, 1);

      const auto report = run(spec);
      std::size_t joined = 0;
      for (const auto& o : report.outcomes) {
        if (o.joined) ++joined;
      }
      joined_pct.add(100.0 * static_cast<double>(joined) /
                     static_cast<double>(n));
      decoded_pct.add(100.0 * report.decoded_fraction());
      repairs.add(static_cast<double>(report.repairs_done));
      data_msgs.add(static_cast<double>(report.data_messages));
      data_bytes.add(static_cast<double>(report.data_bytes));
      // Convergence + decoded-fraction gate, per structure: everyone joins,
      // both crashes are repaired, every survivor decodes.
      if (joined != n || report.repairs_done < 2 ||
          report.decoded_fraction() < 1.0) {
        structure_gate = false;
      }
    }
    structure_table.add_row(
        {lane.name, fmt(joined_pct.mean(), 1), fmt(decoded_pct.mean(), 1),
         fmt(repairs.mean(), 1), fmt(data_msgs.mean(), 0),
         fmt(data_bytes.mean(), 0),
         fmt(data_bytes.mean() / data_msgs.mean(), 1)});
    structure_decoded[lane.name] = decoded_pct.mean();
    session.note(std::string("decoded_pct_") + lane.name, decoded_pct.mean());
  }
  std::printf("\nStructure sweep at 10%% control loss (g=%zu, w=g/8):\n",
              sweep_gen_size);
  structure_table.print();
  session.add_table("structure_sweep", structure_table);
  session.note("structure_gate", structure_gate);

  // Shard/worker invariance on a structured lane: the report must be a pure
  // function of the spec. Compared via the per-lane observables (the
  // determinism contract excludes max_in_flight).
  bool invariance_ok = true;
  {
    node::ProtocolScenarioSpec spec;
    spec.k = 12;
    spec.default_degree = 3;
    spec.generations = 2;
    spec.generation_size = sweep_gen_size;
    spec.symbols = 8;
    spec.silence_timeout = 8;
    spec.seed = 0xE23F;
    spec.structure = coding::StructureSpec::banded(2, true);
    spec.transport.latency = sim::LatencySpec::uniform(0.5, 1.5);
    spec.transport.control_loss = sim::LossSpec::bernoulli(0.10);
    spec.faults.join_burst(1.0, smoke ? 6 : 12, 1.0);
    const auto a = node::run_scenario_sharded(spec, 1, 0);
    const auto b = node::run_scenario_sharded(spec, kShards, kWorkers);
    invariance_ok = a.messages_sent == b.messages_sent &&
                    a.data_bytes == b.data_bytes &&
                    a.control_bytes == b.control_bytes &&
                    a.events_executed == b.events_executed &&
                    a.decoded_fraction() == b.decoded_fraction() &&
                    a.outcomes.size() == b.outcomes.size();
    for (std::size_t i = 0; invariance_ok && i < a.outcomes.size(); ++i) {
      invariance_ok = a.outcomes[i].joined == b.outcomes[i].joined &&
                      a.outcomes[i].decoded == b.outcomes[i].decoded &&
                      a.outcomes[i].decode_time == b.outcomes[i].decode_time;
    }
  }
  session.note("shard_invariance", invariance_ok);

  // Causal-trace acceptance: a lossy run must leave behind a span tree from
  // which one join's full retry chain reconstructs. With the obs kill switch
  // compiled out there is no trace to check, so the gate only bites when the
  // buffer is live.
  const bool trace_ok = capture_trace(n);
  session.note("trace_span_chain", trace_ok);
  if (NCAST_OBS_ENABLED && !trace_ok) {
    std::fprintf(stderr,
                 "bench_control_loss: no join span with a complete retry "
                 "chain in the captured trace\n");
    return 1;
  }

  std::printf(
      "\nReading: loss on the control plane taxes the protocol in time, not\n"
      "in outcome. Join latency and retry counts climb with the loss rate\n"
      "(each lost hello or accept costs one backoff period), repairs finish\n"
      "later (lost complaints are retransmitted on the silence clock), but\n"
      "through %.0f%% loss every client still joins, the crashes are still\n"
      "spliced out, and the survivors still decode. %s\n",
      rates.back() * 100,
      gate_ok ? "Convergence gate (<=10%): PASS."
              : "Convergence gate (<=10%): FAIL.");

  if (!gate_ok) {
    std::fprintf(stderr,
                 "bench_control_loss: protocol failed to converge at <=10%% "
                 "control loss\n");
    return 1;
  }
  if (!structure_gate) {
    std::fprintf(stderr,
                 "bench_control_loss: a structured lane failed its "
                 "convergence/decoded-fraction gate (dense %.1f%%, banded "
                 "%.1f%%, overlapped %.1f%% decoded)\n",
                 structure_decoded["dense"], structure_decoded["banded"],
                 structure_decoded["overlapped"]);
    return 1;
  }
  if (!invariance_ok) {
    std::fprintf(stderr,
                 "bench_control_loss: sharded report not shard/worker "
                 "invariant on the banded lane\n");
    return 1;
  }
  return 0;
}
