// E3 — Theorem 5: the expected number of steps before the system collapses is
// at least (1/xi1) e^{xi2 k / d^3}.
//
// We push the system into a deliberately harsh regime (large p) so collapse
// is observable, and measure how the median collapse time scales with k at
// fixed d: the fit of log(median steps) against k/d^3 should be linear with
// positive slope — time-to-collapse grows exponentially in k/d^3.

#include <cstdio>

#include "bench_common.hpp"
#include "overlay/polymatroid.hpp"
#include "util/stats.hpp"

using namespace ncast;

namespace {

/// Steps until the defective-tuple fraction crosses `threshold`, or `cap`.
std::uint64_t steps_to_collapse(std::uint32_t k, std::uint32_t d, double p,
                                double threshold, std::uint64_t cap, Rng& rng) {
  overlay::PolymatroidCurtain pc(k);
  const double a =
      static_cast<double>(overlay::PolymatroidCurtain::tuple_count(k, d));
  for (std::uint64_t t = 1; t <= cap; ++t) {
    pc.join_random(d, p, rng);
    if (t % 8 == 0) {
      const double frac = static_cast<double>(pc.defective_tuples(d)) / a;
      if (frac >= threshold) return t;
    }
  }
  return cap;
}

}  // namespace

int main() {
  bench::MetricsSession session("collapse");
  session.param("k", "6..16");
  session.param("d", 2);
  session.param("p", "0.25,0.30");
  session.param("n", 40);  // trials per k
  session.param("seed", std::uint64_t{0xE30000});

  bench::banner(
      "E3: Theorem 5 (time to collapse is exponential in k/d^3)",
      "d = 2, deliberately harsh failure rates so collapse happens within\n"
      "the step budget; collapse := 90% of d-tuples defective. Median over\n"
      "trials. Claim: log(median steps) grows linearly in k/d^3.");

  const std::uint32_t d = 2;
  const double threshold = 0.9;
  const std::uint64_t cap = 60000;
  const int trials = 40;

  for (const double p : {0.30, 0.25}) {
    Table table({"k", "k/d^3", "median steps", "mean steps", "censored"});
    std::vector<double> xs, ys;
    for (const std::uint32_t k : {6u, 8u, 10u, 12u, 14u, 16u}) {
      SampleSet samples;
      int censored = 0;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng(0xE30000 + k * 1000 + trial +
                static_cast<std::uint64_t>(p * 1e6));
        const auto t = steps_to_collapse(k, d, p, threshold, cap, rng);
        if (t >= cap) ++censored;
        samples.add(static_cast<double>(t));
      }
      const double median = samples.median();
      table.add_row({std::to_string(k), fmt(k / 8.0, 2), fmt(median, 0),
                     fmt(samples.mean(), 0), std::to_string(censored)});
      if (censored < trials / 2) {
        xs.push_back(k / 8.0);
        ys.push_back(std::log(median));
      }
    }
    std::printf("p = %.2f (pd = %.2f):\n", p, p * d);
    table.print();
    session.add_table("collapse_p" + fmt(p, 2), table);
    if (xs.size() >= 3) {
      const auto fit = fit_line(xs, ys);
      std::printf(
          "fit log(median) = %.2f + %.2f * (k/d^3),  r^2 = %.3f\n"
          "positive slope => exponential growth in k/d^3, as claimed.\n\n",
          fit.intercept, fit.slope, fit.r2);
      session.note("slope_p" + fmt(p, 2), fit.slope);
      session.note("r2_p" + fmt(p, 2), fit.r2);
    } else {
      std::printf("too many censored runs for a fit at this p\n\n");
    }
  }
  return 0;
}
