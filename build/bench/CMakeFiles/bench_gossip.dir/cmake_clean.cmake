file(REMOVE_RECURSE
  "CMakeFiles/bench_gossip.dir/bench_gossip.cpp.o"
  "CMakeFiles/bench_gossip.dir/bench_gossip.cpp.o.d"
  "bench_gossip"
  "bench_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
