# Empty compiler generated dependencies file for bench_server_load.
# This may be replaced when dependencies are built.
