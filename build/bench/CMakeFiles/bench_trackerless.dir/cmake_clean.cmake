file(REMOVE_RECURSE
  "CMakeFiles/bench_trackerless.dir/bench_trackerless.cpp.o"
  "CMakeFiles/bench_trackerless.dir/bench_trackerless.cpp.o.d"
  "bench_trackerless"
  "bench_trackerless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trackerless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
