# Empty compiler generated dependencies file for bench_trackerless.
# This may be replaced when dependencies are built.
