# Empty compiler generated dependencies file for bench_repair_interval.
# This may be replaced when dependencies are built.
