file(REMOVE_RECURSE
  "CMakeFiles/bench_repair_interval.dir/bench_repair_interval.cpp.o"
  "CMakeFiles/bench_repair_interval.dir/bench_repair_interval.cpp.o.d"
  "bench_repair_interval"
  "bench_repair_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repair_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
