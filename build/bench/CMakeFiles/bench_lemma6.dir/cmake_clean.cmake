file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma6.dir/bench_lemma6.cpp.o"
  "CMakeFiles/bench_lemma6.dir/bench_lemma6.cpp.o.d"
  "bench_lemma6"
  "bench_lemma6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
