# Empty compiler generated dependencies file for bench_lemma6.
# This may be replaced when dependencies are built.
