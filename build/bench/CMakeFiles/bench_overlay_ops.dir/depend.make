# Empty dependencies file for bench_overlay_ops.
# This may be replaced when dependencies are built.
