file(REMOVE_RECURSE
  "CMakeFiles/bench_overlay_ops.dir/bench_overlay_ops.cpp.o"
  "CMakeFiles/bench_overlay_ops.dir/bench_overlay_ops.cpp.o.d"
  "bench_overlay_ops"
  "bench_overlay_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overlay_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
