# Empty compiler generated dependencies file for bench_conjecture.
# This may be replaced when dependencies are built.
