file(REMOVE_RECURSE
  "CMakeFiles/bench_conjecture.dir/bench_conjecture.cpp.o"
  "CMakeFiles/bench_conjecture.dir/bench_conjecture.cpp.o.d"
  "bench_conjecture"
  "bench_conjecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conjecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
