file(REMOVE_RECURSE
  "CMakeFiles/bench_field_ablation.dir/bench_field_ablation.cpp.o"
  "CMakeFiles/bench_field_ablation.dir/bench_field_ablation.cpp.o.d"
  "bench_field_ablation"
  "bench_field_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_field_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
