# Empty dependencies file for bench_seeding.
# This may be replaced when dependencies are built.
