file(REMOVE_RECURSE
  "CMakeFiles/bench_seeding.dir/bench_seeding.cpp.o"
  "CMakeFiles/bench_seeding.dir/bench_seeding.cpp.o.d"
  "bench_seeding"
  "bench_seeding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seeding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
