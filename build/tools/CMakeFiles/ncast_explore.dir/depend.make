# Empty dependencies file for ncast_explore.
# This may be replaced when dependencies are built.
