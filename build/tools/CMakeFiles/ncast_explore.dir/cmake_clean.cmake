file(REMOVE_RECURSE
  "CMakeFiles/ncast_explore.dir/ncast_explore.cpp.o"
  "CMakeFiles/ncast_explore.dir/ncast_explore.cpp.o.d"
  "ncast_explore"
  "ncast_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncast_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
