file(REMOVE_RECURSE
  "CMakeFiles/ncast_sim.dir/async_broadcast.cpp.o"
  "CMakeFiles/ncast_sim.dir/async_broadcast.cpp.o.d"
  "CMakeFiles/ncast_sim.dir/broadcast.cpp.o"
  "CMakeFiles/ncast_sim.dir/broadcast.cpp.o.d"
  "CMakeFiles/ncast_sim.dir/churn.cpp.o"
  "CMakeFiles/ncast_sim.dir/churn.cpp.o.d"
  "libncast_sim.a"
  "libncast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
