file(REMOVE_RECURSE
  "libncast_sim.a"
)
