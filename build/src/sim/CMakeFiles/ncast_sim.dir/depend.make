# Empty dependencies file for ncast_sim.
# This may be replaced when dependencies are built.
