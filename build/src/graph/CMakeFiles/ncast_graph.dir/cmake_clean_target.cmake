file(REMOVE_RECURSE
  "libncast_graph.a"
)
