file(REMOVE_RECURSE
  "CMakeFiles/ncast_graph.dir/arborescence.cpp.o"
  "CMakeFiles/ncast_graph.dir/arborescence.cpp.o.d"
  "CMakeFiles/ncast_graph.dir/digraph.cpp.o"
  "CMakeFiles/ncast_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/ncast_graph.dir/maxflow.cpp.o"
  "CMakeFiles/ncast_graph.dir/maxflow.cpp.o.d"
  "libncast_graph.a"
  "libncast_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncast_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
