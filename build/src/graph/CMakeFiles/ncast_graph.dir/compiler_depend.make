# Empty compiler generated dependencies file for ncast_graph.
# This may be replaced when dependencies are built.
