# Empty compiler generated dependencies file for ncast_coding.
# This may be replaced when dependencies are built.
