file(REMOVE_RECURSE
  "libncast_coding.a"
)
