file(REMOVE_RECURSE
  "CMakeFiles/ncast_coding.dir/reed_solomon.cpp.o"
  "CMakeFiles/ncast_coding.dir/reed_solomon.cpp.o.d"
  "CMakeFiles/ncast_coding.dir/wire.cpp.o"
  "CMakeFiles/ncast_coding.dir/wire.cpp.o.d"
  "libncast_coding.a"
  "libncast_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncast_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
