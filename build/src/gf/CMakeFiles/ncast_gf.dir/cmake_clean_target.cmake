file(REMOVE_RECURSE
  "libncast_gf.a"
)
