file(REMOVE_RECURSE
  "CMakeFiles/ncast_gf.dir/gf256.cpp.o"
  "CMakeFiles/ncast_gf.dir/gf256.cpp.o.d"
  "CMakeFiles/ncast_gf.dir/gf256_simd.cpp.o"
  "CMakeFiles/ncast_gf.dir/gf256_simd.cpp.o.d"
  "CMakeFiles/ncast_gf.dir/gf2_16.cpp.o"
  "CMakeFiles/ncast_gf.dir/gf2_16.cpp.o.d"
  "libncast_gf.a"
  "libncast_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncast_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
