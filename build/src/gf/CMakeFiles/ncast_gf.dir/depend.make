# Empty dependencies file for ncast_gf.
# This may be replaced when dependencies are built.
