# Empty compiler generated dependencies file for ncast_baselines.
# This may be replaced when dependencies are built.
