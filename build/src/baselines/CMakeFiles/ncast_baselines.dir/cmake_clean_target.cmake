file(REMOVE_RECURSE
  "libncast_baselines.a"
)
