
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/forwarding.cpp" "src/baselines/CMakeFiles/ncast_baselines.dir/forwarding.cpp.o" "gcc" "src/baselines/CMakeFiles/ncast_baselines.dir/forwarding.cpp.o.d"
  "/root/repo/src/baselines/tree_packing.cpp" "src/baselines/CMakeFiles/ncast_baselines.dir/tree_packing.cpp.o" "gcc" "src/baselines/CMakeFiles/ncast_baselines.dir/tree_packing.cpp.o.d"
  "/root/repo/src/baselines/trees.cpp" "src/baselines/CMakeFiles/ncast_baselines.dir/trees.cpp.o" "gcc" "src/baselines/CMakeFiles/ncast_baselines.dir/trees.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/ncast_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ncast_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ncast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
