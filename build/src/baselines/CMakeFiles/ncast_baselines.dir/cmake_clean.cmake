file(REMOVE_RECURSE
  "CMakeFiles/ncast_baselines.dir/forwarding.cpp.o"
  "CMakeFiles/ncast_baselines.dir/forwarding.cpp.o.d"
  "CMakeFiles/ncast_baselines.dir/tree_packing.cpp.o"
  "CMakeFiles/ncast_baselines.dir/tree_packing.cpp.o.d"
  "CMakeFiles/ncast_baselines.dir/trees.cpp.o"
  "CMakeFiles/ncast_baselines.dir/trees.cpp.o.d"
  "libncast_baselines.a"
  "libncast_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncast_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
