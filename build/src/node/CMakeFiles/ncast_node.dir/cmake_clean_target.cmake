file(REMOVE_RECURSE
  "libncast_node.a"
)
