
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/client_node.cpp" "src/node/CMakeFiles/ncast_node.dir/client_node.cpp.o" "gcc" "src/node/CMakeFiles/ncast_node.dir/client_node.cpp.o.d"
  "/root/repo/src/node/gossip_peer.cpp" "src/node/CMakeFiles/ncast_node.dir/gossip_peer.cpp.o" "gcc" "src/node/CMakeFiles/ncast_node.dir/gossip_peer.cpp.o.d"
  "/root/repo/src/node/network.cpp" "src/node/CMakeFiles/ncast_node.dir/network.cpp.o" "gcc" "src/node/CMakeFiles/ncast_node.dir/network.cpp.o.d"
  "/root/repo/src/node/server_node.cpp" "src/node/CMakeFiles/ncast_node.dir/server_node.cpp.o" "gcc" "src/node/CMakeFiles/ncast_node.dir/server_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/ncast_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/ncast_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ncast_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ncast_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ncast_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
