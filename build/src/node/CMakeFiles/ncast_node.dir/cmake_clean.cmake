file(REMOVE_RECURSE
  "CMakeFiles/ncast_node.dir/client_node.cpp.o"
  "CMakeFiles/ncast_node.dir/client_node.cpp.o.d"
  "CMakeFiles/ncast_node.dir/gossip_peer.cpp.o"
  "CMakeFiles/ncast_node.dir/gossip_peer.cpp.o.d"
  "CMakeFiles/ncast_node.dir/network.cpp.o"
  "CMakeFiles/ncast_node.dir/network.cpp.o.d"
  "CMakeFiles/ncast_node.dir/server_node.cpp.o"
  "CMakeFiles/ncast_node.dir/server_node.cpp.o.d"
  "libncast_node.a"
  "libncast_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncast_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
