# Empty compiler generated dependencies file for ncast_node.
# This may be replaced when dependencies are built.
