
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/curtain_server.cpp" "src/overlay/CMakeFiles/ncast_overlay.dir/curtain_server.cpp.o" "gcc" "src/overlay/CMakeFiles/ncast_overlay.dir/curtain_server.cpp.o.d"
  "/root/repo/src/overlay/defect.cpp" "src/overlay/CMakeFiles/ncast_overlay.dir/defect.cpp.o" "gcc" "src/overlay/CMakeFiles/ncast_overlay.dir/defect.cpp.o.d"
  "/root/repo/src/overlay/flow_graph.cpp" "src/overlay/CMakeFiles/ncast_overlay.dir/flow_graph.cpp.o" "gcc" "src/overlay/CMakeFiles/ncast_overlay.dir/flow_graph.cpp.o.d"
  "/root/repo/src/overlay/gossip.cpp" "src/overlay/CMakeFiles/ncast_overlay.dir/gossip.cpp.o" "gcc" "src/overlay/CMakeFiles/ncast_overlay.dir/gossip.cpp.o.d"
  "/root/repo/src/overlay/polymatroid.cpp" "src/overlay/CMakeFiles/ncast_overlay.dir/polymatroid.cpp.o" "gcc" "src/overlay/CMakeFiles/ncast_overlay.dir/polymatroid.cpp.o.d"
  "/root/repo/src/overlay/random_graph.cpp" "src/overlay/CMakeFiles/ncast_overlay.dir/random_graph.cpp.o" "gcc" "src/overlay/CMakeFiles/ncast_overlay.dir/random_graph.cpp.o.d"
  "/root/repo/src/overlay/thread_matrix.cpp" "src/overlay/CMakeFiles/ncast_overlay.dir/thread_matrix.cpp.o" "gcc" "src/overlay/CMakeFiles/ncast_overlay.dir/thread_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ncast_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ncast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
