file(REMOVE_RECURSE
  "libncast_overlay.a"
)
