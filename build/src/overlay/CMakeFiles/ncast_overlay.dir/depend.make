# Empty dependencies file for ncast_overlay.
# This may be replaced when dependencies are built.
