file(REMOVE_RECURSE
  "CMakeFiles/ncast_overlay.dir/curtain_server.cpp.o"
  "CMakeFiles/ncast_overlay.dir/curtain_server.cpp.o.d"
  "CMakeFiles/ncast_overlay.dir/defect.cpp.o"
  "CMakeFiles/ncast_overlay.dir/defect.cpp.o.d"
  "CMakeFiles/ncast_overlay.dir/flow_graph.cpp.o"
  "CMakeFiles/ncast_overlay.dir/flow_graph.cpp.o.d"
  "CMakeFiles/ncast_overlay.dir/gossip.cpp.o"
  "CMakeFiles/ncast_overlay.dir/gossip.cpp.o.d"
  "CMakeFiles/ncast_overlay.dir/polymatroid.cpp.o"
  "CMakeFiles/ncast_overlay.dir/polymatroid.cpp.o.d"
  "CMakeFiles/ncast_overlay.dir/random_graph.cpp.o"
  "CMakeFiles/ncast_overlay.dir/random_graph.cpp.o.d"
  "CMakeFiles/ncast_overlay.dir/thread_matrix.cpp.o"
  "CMakeFiles/ncast_overlay.dir/thread_matrix.cpp.o.d"
  "libncast_overlay.a"
  "libncast_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncast_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
