file(REMOVE_RECURSE
  "libncast_util.a"
)
