# Empty compiler generated dependencies file for ncast_util.
# This may be replaced when dependencies are built.
