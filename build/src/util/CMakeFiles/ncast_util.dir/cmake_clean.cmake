file(REMOVE_RECURSE
  "CMakeFiles/ncast_util.dir/stats.cpp.o"
  "CMakeFiles/ncast_util.dir/stats.cpp.o.d"
  "CMakeFiles/ncast_util.dir/table.cpp.o"
  "CMakeFiles/ncast_util.dir/table.cpp.o.d"
  "libncast_util.a"
  "libncast_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncast_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
