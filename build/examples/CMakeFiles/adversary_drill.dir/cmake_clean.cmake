file(REMOVE_RECURSE
  "CMakeFiles/adversary_drill.dir/adversary_drill.cpp.o"
  "CMakeFiles/adversary_drill.dir/adversary_drill.cpp.o.d"
  "adversary_drill"
  "adversary_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
