# Empty compiler generated dependencies file for adversary_drill.
# This may be replaced when dependencies are built.
