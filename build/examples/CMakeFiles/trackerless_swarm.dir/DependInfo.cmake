
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/trackerless_swarm.cpp" "examples/CMakeFiles/trackerless_swarm.dir/trackerless_swarm.cpp.o" "gcc" "examples/CMakeFiles/trackerless_swarm.dir/trackerless_swarm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ncast_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ncast_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/ncast_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ncast_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/ncast_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/ncast_node.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ncast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ncast_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
