# Empty compiler generated dependencies file for trackerless_swarm.
# This may be replaced when dependencies are built.
