file(REMOVE_RECURSE
  "CMakeFiles/trackerless_swarm.dir/trackerless_swarm.cpp.o"
  "CMakeFiles/trackerless_swarm.dir/trackerless_swarm.cpp.o.d"
  "trackerless_swarm"
  "trackerless_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trackerless_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
