file(REMOVE_RECURSE
  "CMakeFiles/live_streaming.dir/live_streaming.cpp.o"
  "CMakeFiles/live_streaming.dir/live_streaming.cpp.o.d"
  "live_streaming"
  "live_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
