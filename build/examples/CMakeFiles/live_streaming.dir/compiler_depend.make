# Empty compiler generated dependencies file for live_streaming.
# This may be replaced when dependencies are built.
