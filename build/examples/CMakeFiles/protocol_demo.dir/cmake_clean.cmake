file(REMOVE_RECURSE
  "CMakeFiles/protocol_demo.dir/protocol_demo.cpp.o"
  "CMakeFiles/protocol_demo.dir/protocol_demo.cpp.o.d"
  "protocol_demo"
  "protocol_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
