file(REMOVE_RECURSE
  "CMakeFiles/layered_streaming.dir/layered_streaming.cpp.o"
  "CMakeFiles/layered_streaming.dir/layered_streaming.cpp.o.d"
  "layered_streaming"
  "layered_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layered_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
