# Empty compiler generated dependencies file for layered_streaming.
# This may be replaced when dependencies are built.
