file(REMOVE_RECURSE
  "CMakeFiles/test_gossip_peer.dir/test_gossip_peer.cpp.o"
  "CMakeFiles/test_gossip_peer.dir/test_gossip_peer.cpp.o.d"
  "test_gossip_peer"
  "test_gossip_peer.pdb"
  "test_gossip_peer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gossip_peer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
