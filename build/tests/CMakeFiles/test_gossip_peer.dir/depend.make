# Empty dependencies file for test_gossip_peer.
# This may be replaced when dependencies are built.
