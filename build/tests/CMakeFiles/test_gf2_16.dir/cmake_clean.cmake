file(REMOVE_RECURSE
  "CMakeFiles/test_gf2_16.dir/test_gf2_16.cpp.o"
  "CMakeFiles/test_gf2_16.dir/test_gf2_16.cpp.o.d"
  "test_gf2_16"
  "test_gf2_16.pdb"
  "test_gf2_16[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gf2_16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
