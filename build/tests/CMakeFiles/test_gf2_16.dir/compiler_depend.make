# Empty compiler generated dependencies file for test_gf2_16.
# This may be replaced when dependencies are built.
