file(REMOVE_RECURSE
  "CMakeFiles/test_broadcast_properties.dir/test_broadcast_properties.cpp.o"
  "CMakeFiles/test_broadcast_properties.dir/test_broadcast_properties.cpp.o.d"
  "test_broadcast_properties"
  "test_broadcast_properties.pdb"
  "test_broadcast_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_broadcast_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
