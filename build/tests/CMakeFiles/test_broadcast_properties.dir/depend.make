# Empty dependencies file for test_broadcast_properties.
# This may be replaced when dependencies are built.
