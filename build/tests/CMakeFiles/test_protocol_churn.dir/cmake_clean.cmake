file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_churn.dir/test_protocol_churn.cpp.o"
  "CMakeFiles/test_protocol_churn.dir/test_protocol_churn.cpp.o.d"
  "test_protocol_churn"
  "test_protocol_churn.pdb"
  "test_protocol_churn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
