file(REMOVE_RECURSE
  "CMakeFiles/test_tree_packing.dir/test_tree_packing.cpp.o"
  "CMakeFiles/test_tree_packing.dir/test_tree_packing.cpp.o.d"
  "test_tree_packing"
  "test_tree_packing.pdb"
  "test_tree_packing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
