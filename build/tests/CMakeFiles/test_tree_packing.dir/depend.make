# Empty dependencies file for test_tree_packing.
# This may be replaced when dependencies are built.
