file(REMOVE_RECURSE
  "CMakeFiles/test_polymatroid.dir/test_polymatroid.cpp.o"
  "CMakeFiles/test_polymatroid.dir/test_polymatroid.cpp.o.d"
  "test_polymatroid"
  "test_polymatroid.pdb"
  "test_polymatroid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polymatroid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
