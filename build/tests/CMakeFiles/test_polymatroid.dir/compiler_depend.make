# Empty compiler generated dependencies file for test_polymatroid.
# This may be replaced when dependencies are built.
