# Empty compiler generated dependencies file for test_null_keys.
# This may be replaced when dependencies are built.
