file(REMOVE_RECURSE
  "CMakeFiles/test_null_keys.dir/test_null_keys.cpp.o"
  "CMakeFiles/test_null_keys.dir/test_null_keys.cpp.o.d"
  "test_null_keys"
  "test_null_keys.pdb"
  "test_null_keys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_null_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
