file(REMOVE_RECURSE
  "CMakeFiles/test_flow_graph.dir/test_flow_graph.cpp.o"
  "CMakeFiles/test_flow_graph.dir/test_flow_graph.cpp.o.d"
  "test_flow_graph"
  "test_flow_graph.pdb"
  "test_flow_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
