# Empty compiler generated dependencies file for test_flow_graph.
# This may be replaced when dependencies are built.
