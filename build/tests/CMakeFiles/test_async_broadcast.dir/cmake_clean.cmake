file(REMOVE_RECURSE
  "CMakeFiles/test_async_broadcast.dir/test_async_broadcast.cpp.o"
  "CMakeFiles/test_async_broadcast.dir/test_async_broadcast.cpp.o.d"
  "test_async_broadcast"
  "test_async_broadcast.pdb"
  "test_async_broadcast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
