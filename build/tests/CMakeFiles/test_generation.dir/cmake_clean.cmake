file(REMOVE_RECURSE
  "CMakeFiles/test_generation.dir/test_generation.cpp.o"
  "CMakeFiles/test_generation.dir/test_generation.cpp.o.d"
  "test_generation"
  "test_generation.pdb"
  "test_generation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
