# Empty compiler generated dependencies file for test_thread_matrix.
# This may be replaced when dependencies are built.
