file(REMOVE_RECURSE
  "CMakeFiles/test_thread_matrix.dir/test_thread_matrix.cpp.o"
  "CMakeFiles/test_thread_matrix.dir/test_thread_matrix.cpp.o.d"
  "test_thread_matrix"
  "test_thread_matrix.pdb"
  "test_thread_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
