# Empty dependencies file for test_curtain_server.
# This may be replaced when dependencies are built.
