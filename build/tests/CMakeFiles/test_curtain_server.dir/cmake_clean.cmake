file(REMOVE_RECURSE
  "CMakeFiles/test_curtain_server.dir/test_curtain_server.cpp.o"
  "CMakeFiles/test_curtain_server.dir/test_curtain_server.cpp.o.d"
  "test_curtain_server"
  "test_curtain_server.pdb"
  "test_curtain_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_curtain_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
