file(REMOVE_RECURSE
  "CMakeFiles/test_arborescence.dir/test_arborescence.cpp.o"
  "CMakeFiles/test_arborescence.dir/test_arborescence.cpp.o.d"
  "test_arborescence"
  "test_arborescence.pdb"
  "test_arborescence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arborescence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
