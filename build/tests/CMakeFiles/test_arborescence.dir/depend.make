# Empty dependencies file for test_arborescence.
# This may be replaced when dependencies are built.
