# Empty compiler generated dependencies file for test_stream_state.
# This may be replaced when dependencies are built.
