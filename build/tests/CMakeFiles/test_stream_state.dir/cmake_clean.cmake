file(REMOVE_RECURSE
  "CMakeFiles/test_stream_state.dir/test_stream_state.cpp.o"
  "CMakeFiles/test_stream_state.dir/test_stream_state.cpp.o.d"
  "test_stream_state"
  "test_stream_state.pdb"
  "test_stream_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
