file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_overlay.dir/test_fuzz_overlay.cpp.o"
  "CMakeFiles/test_fuzz_overlay.dir/test_fuzz_overlay.cpp.o.d"
  "test_fuzz_overlay"
  "test_fuzz_overlay.pdb"
  "test_fuzz_overlay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
