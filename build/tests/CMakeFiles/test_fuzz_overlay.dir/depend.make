# Empty dependencies file for test_fuzz_overlay.
# This may be replaced when dependencies are built.
