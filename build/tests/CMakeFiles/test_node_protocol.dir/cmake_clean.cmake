file(REMOVE_RECURSE
  "CMakeFiles/test_node_protocol.dir/test_node_protocol.cpp.o"
  "CMakeFiles/test_node_protocol.dir/test_node_protocol.cpp.o.d"
  "test_node_protocol"
  "test_node_protocol.pdb"
  "test_node_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
